module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Obs = Simcov_obs.Obs
module Covdb = Simcov_covdb.Covdb
module Campaign = Simcov_campaign.Campaign
module Circuit = Simcov_netlist.Circuit
module Fsm = Simcov_fsm.Fsm
module Detect = Simcov_coverage.Detect
module Stuckat = Simcov_coverage.Stuckat
module Fault = Simcov_coverage.Fault
module Lint = Simcov_analysis.Lint
module Fsm_lint = Simcov_analysis.Fsm_lint
module Methodology = Simcov_core.Methodology
module Completeness = Simcov_core.Completeness
module Requirements = Simcov_core.Requirements

type outcome = {
  exit_code : int;
  report : Json.t option;
  human : string;
  notes : string list;
  error : string option;
  interrupted : bool;
}

let ok ?report ?(human = "") ?(notes = []) ?(interrupted = false) exit_code =
  { exit_code; report; human; notes; error = None; interrupted }

let fail exit_code msg =
  { exit_code; report = None; human = ""; notes = []; error = Some msg;
    interrupted = false }

let status_of o =
  if o.interrupted then Job.Interrupted
  else if o.error <> None then Job.Failed
  else Job.Done

(* ---- covdb plumbing (moved verbatim from the CLI) ---- *)

(* The campaign verdict <-> covdb status conversion is exact: the
   driver guarantees [detected <=> detect_step] and
   [excited <=> excite_step], so a verdict resumed from a snapshot is
   byte-identical to the one the interrupted run computed. *)
let status_of_verdict (v : Campaign.verdict) =
  match (v.Campaign.detect_step, v.Campaign.excite_step) with
  | Some detect_step, excite_step -> Covdb.Detected { excite_step; detect_step }
  | None, Some es -> Covdb.Excited es
  | None, None -> Covdb.Undetected

let verdict_of_status = function
  | Covdb.Undetected ->
      { Campaign.detected = false; excited = false; detect_step = None;
        excite_step = None }
  | Covdb.Excited es ->
      { Campaign.detected = false; excited = true; detect_step = None;
        excite_step = Some es }
  | Covdb.Detected { excite_step; detect_step } ->
      { Campaign.detected = true; excited = excite_step <> None;
        detect_step = Some detect_step; excite_step }

let hash_hex parts =
  Simcov_util.Crc32.to_hex
    (List.fold_left (fun c s -> Simcov_util.Crc32.update c (s ^ "\n")) 0l parts)

(* the snapshot header's two fingerprints: [config_hash] identifies the
   fault population (merge compatibility), [stim_hash] the stimulus
   word (additionally required to resume — recorded step indices only
   make sense against the same word) *)
let config_hash ~backend ~model keys = hash_hex (backend :: model :: keys)
let stim_hash_ints word = hash_hex (List.map string_of_int word)

let stim_hash_bits word =
  hash_hex
    (List.map
       (fun a ->
         String.init (Array.length a) (fun i -> if a.(i) then '1' else '0'))
       word)

(* Run one campaign crash-safely: validate and inject the resume
   snapshot, periodically flush checkpoint snapshots, stop cleanly at a
   batch boundary when [should_stop] flips, and always leave a final
   snapshot behind (marked complete only when nothing was cut short).
   Returns [Error (exit_code, msg)] on an unusable resume snapshot. *)
let run_persisted (type f) ~(p : Job.coverage_params) ~chaos_kill_after
    ~should_stop ~notes ~(hdr : Covdb.header) ~(key : f -> string)
    ~(run :
       ?resume:(f -> Campaign.verdict option) ->
       ?checkpoint:f Campaign.checkpoint ->
       should_stop:(unit -> bool) ->
       unit ->
       f Campaign.outcome) =
  let resume_db =
    match p.Job.cov_resume with
    | None -> Ok None
    | Some path -> (
        match Covdb.load path with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok { Covdb.db; salvaged } ->
            let h = Covdb.header db in
            if
              h.Covdb.backend <> hdr.Covdb.backend
              || h.Covdb.config_hash <> hdr.Covdb.config_hash
            then
              Error
                (Printf.sprintf
                   "%s: snapshot is for a different campaign configuration \
                    (snapshot %s/%s, this run %s/%s)"
                   path h.Covdb.backend h.Covdb.config_hash hdr.Covdb.backend
                   hdr.Covdb.config_hash)
            else if
              h.Covdb.stim_hash <> hdr.Covdb.stim_hash
              || h.Covdb.word_length <> hdr.Covdb.word_length
            then
              Error
                (Printf.sprintf
                   "%s: snapshot was recorded against a different stimulus \
                    word; rerun with the producing run's --seed/--steps"
                   path)
            else begin
              if salvaged then
                notes :=
                  Printf.sprintf
                    "warning: %s: damaged snapshot; salvaged %d valid records"
                    path (Covdb.n_records db)
                  :: !notes;
              Ok (Some db)
            end)
  in
  match resume_db with
  | Error e -> Error (4, e)
  | Ok db_opt ->
      let ck_file =
        match p.Job.cov_checkpoint with
        | Some _ as f -> f
        | None -> p.Job.cov_resume
      in
      let save_snapshot ~complete ~truncated pairs =
        match ck_file with
        | None -> ()
        | Some path ->
            let db = Covdb.create hdr in
            List.iter
              (fun (f, v) -> Covdb.set db (key f) (status_of_verdict v))
              pairs;
            Covdb.set_complete db complete;
            Covdb.set_truncated db truncated;
            Covdb.save db path
      in
      let flushes = Atomic.make 0 in
      let checkpoint =
        match ck_file with
        | None -> None
        | Some _ ->
            Some
              {
                Campaign.every = max 1 p.Job.cov_checkpoint_every;
                flush =
                  (fun pairs ->
                    save_snapshot ~complete:false ~truncated:None pairs;
                    let n = 1 + Atomic.fetch_and_add flushes 1 in
                    match chaos_kill_after with
                    | Some k when n >= k ->
                        (* the chaos harness's deterministic crash
                           point: an uncatchable kill right after a
                           flush commits *)
                        Unix.kill (Unix.getpid ()) Sys.sigkill
                    | _ -> ());
              }
      in
      let resume =
        Option.map
          (fun db f -> Option.map verdict_of_status (Covdb.find db (key f)))
          db_opt
      in
      let interrupted = ref false in
      let should_stop () =
        (* sticky: once the stop is observed the whole run counts as
           interrupted, even if the predicate later flips back *)
        if should_stop () then interrupted := true;
        !interrupted
      in
      let outcome = run ?resume ?checkpoint ~should_stop () in
      let r = outcome.Campaign.report in
      let complete =
        (not !interrupted)
        && r.Campaign.truncated = None
        && r.Campaign.shard_failures = []
        && r.Campaign.skipped = 0
      in
      save_snapshot ~complete
        ~truncated:(Option.map Budget.resource_name r.Campaign.truncated)
        outcome.Campaign.verdicts;
      Ok (outcome, !interrupted)

(* exit-code priority for a campaign run: an interrupt outranks a
   degraded-but-finished run, which outranks truncation, which
   outranks a coverage threshold miss *)
let campaign_exit ~fail_under ~interrupted ~pct (r : _ Campaign.report) =
  if interrupted then 130
  else if r.Campaign.shard_failures <> [] then 5
  else if r.Campaign.truncated <> None then 3
  else match fail_under with Some t when pct < t -> 1 | _ -> 0

(* ---- validate-dlx ---- *)

let requirement_json = function
  | Requirements.Satisfied e ->
      Json.Obj [ ("status", Json.String "satisfied"); ("evidence", Json.String e) ]
  | Requirements.Violated e ->
      Json.Obj [ ("status", Json.String "violated"); ("evidence", Json.String e) ]
  | Requirements.Assumed e ->
      Json.Obj [ ("status", Json.String "assumed"); ("evidence", Json.String e) ]

let validate_json (r : Methodology.run_report) =
  let open Json in
  let cert =
    match r.Methodology.certificate with
    | Ok c ->
        Obj
          [
            ("ok", Bool true);
            ("k", Int c.Completeness.k);
            ("states", Int c.Completeness.n_states);
            ("transitions", Int c.Completeness.n_transitions);
            ("tour_length", Int c.Completeness.tour_length);
          ]
    | Error Completeness.Not_strongly_connected ->
        Obj [ ("ok", Bool false); ("failure", String "not-strongly-connected") ]
    | Error (Completeness.Indistinguishable_pair (a, b)) ->
        Obj
          [
            ("ok", Bool false);
            ("failure", String "indistinguishable-pair");
            ("pair", List [ Int a; Int b ]);
          ]
  in
  let rq = r.Methodology.requirements in
  Obj
    [
      ("schema", String "simcov-validate/1");
      ( "config",
        Obj
          [
            ("regs", Int r.Methodology.config.Simcov_dlx.Testmodel.n_regs);
            ("track_dest", Bool r.Methodology.config.Simcov_dlx.Testmodel.track_dest);
            ( "observable_dest",
              Bool r.Methodology.config.Simcov_dlx.Testmodel.observable_dest );
          ] );
      ("lint_errors", Int (List.length r.Methodology.lint_errors));
      ("fsm_lint", Fsm_lint.to_json r.Methodology.fsm_lint);
      ( "model",
        Obj
          [
            ("states", Int r.Methodology.model_states);
            ("transitions", Int r.Methodology.model_transitions);
          ] );
      ( "symbolic",
        Obj
          [
            ("states", Float r.Methodology.symbolic.Methodology.sym_states);
            ("transitions", Float r.Methodology.symbolic.Methodology.sym_transitions);
            ( "tier",
              String (Methodology.tier_name r.Methodology.symbolic.Methodology.tier) );
            ( "degradations",
              List
                (List.map
                   (fun s -> String s)
                   r.Methodology.symbolic.Methodology.degradations) );
          ] );
      ( "requirements",
        Obj
          [
            ("r1", requirement_json rq.Requirements.r1_uniform_output_errors);
            ("r2", requirement_json rq.Requirements.r2_bounded_processing);
            ("r3", requirement_json rq.Requirements.r3_unique_outputs);
            ("r4", requirement_json rq.Requirements.r4_no_masking);
            ("r5", requirement_json rq.Requirements.r5_observable_interaction);
          ] );
      ("certificate", cert);
      ("tour_length", Int r.Methodology.tour_length);
      ("program_length", Int r.Methodology.program_length);
      ("issued", Int r.Methodology.issued);
      ( "bugs",
        Obj
          [
            ("detected", Int r.Methodology.n_bugs_detected);
            ("total", Int (List.length r.Methodology.bug_results));
            ( "results",
              Obj
                (List.map
                   (fun (n, d) -> (n, Bool d))
                   r.Methodology.bug_results) );
          ] );
      ("bug_coverage_pct", Float (Campaign.coverage_pct r.Methodology.bug_coverage));
      ( "fsm_fault_coverage_pct",
        Float (Detect.coverage_pct r.Methodology.fsm_fault_coverage) );
      ("campaigns_truncated", Bool (Methodology.campaigns_truncated r));
      ( "timings",
        Obj (List.map (fun (n, s) -> (n, Float s)) r.Methodology.timings) );
    ]

(* job-schema reorder enum -> the symbolic layer's policy variant *)
let reorder_variant = function
  | Job.Reorder_off -> `Off
  | Job.Reorder_on -> `On
  | Job.Reorder_auto -> `Auto

let run_validate ~budget (p : Job.validate_params) =
  let config =
    {
      Simcov_dlx.Testmodel.n_regs = p.Job.va_regs;
      track_dest = p.Job.va_track_dest;
      observable_dest = p.Job.va_observable_dest;
    }
  in
  let report =
    Methodology.validate_dlx ~config ~seed:p.Job.va_seed ~budget
      ~reorder:(reorder_variant p.Job.va_reorder) ~lanes:p.Job.va_lanes
      ~jobs:p.Job.va_jobs ()
  in
  let human = Format.asprintf "%a@." Methodology.pp_run_report report in
  let exit_code =
    if Methodology.campaigns_truncated report then 3
    else if
      report.Methodology.lint_errors = []
      (* FSM precondition gate: warnings are recorded, errors fail *)
      && not
           (Fsm_lint.fails report.Methodology.fsm_lint
              ~threshold:Simcov_analysis.Diag.Error)
      && report.Methodology.n_bugs_detected
         = List.length report.Methodology.bug_results
      && Result.is_ok report.Methodology.certificate
    then 0
    else 1
  in
  ok ~report:(validate_json report) ~human exit_code

(* ---- stats ---- *)

let run_stats ~cache ~budget (p : Job.stats_params) =
  let buf = Buffer.create 512 in
  match Model_cache.circuit_of_spec cache "dlx-test" with
  | Error e -> fail 2 e
  | Ok (final, _, canonical) ->
  Buffer.add_string buf (Format.asprintf "%a@." Circuit.pp_stats final);
  (* the compiled machine is cached per (circuit, reorder mode): a
     daemon serving repeated stats jobs reuses the live manager, and
     the between-jobs sifting pass can then actually shrink it *)
  let se =
    Model_cache.sym_of_circuit cache ~reorder:p.Job.st_reorder ~canonical
      (fun () ->
        Simcov_symbolic.Symfsm.of_circuit ~budget
          ~reorder:(reorder_variant p.Job.st_reorder) final)
  in
  Mutex.lock se.Model_cache.s_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock se.Model_cache.s_lock)
  @@ fun () ->
  let sym = se.Model_cache.sym in
  Simcov_symbolic.Symfsm.attach_budget sym budget;
  let open Simcov_symbolic.Symfsm in
  let tr = reachable_stats ~budget sym in
  Buffer.add_string buf
    (Printf.sprintf "reachable states: %.0f of %.0f (in %d iterations, %.2fs)\n"
       (count_states sym tr.reached) (state_space_size sym) tr.iterations
       tr.total_time_s);
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf
           "  iter %d: frontier %.0f states (%d nodes), reached %d nodes, %d \
            live, %.3fs\n"
           st.iteration st.frontier_states st.frontier_nodes st.reached_nodes
           st.live_nodes st.time_s))
    tr.iter_stats;
  if tr.gc_runs > 0 then
    Buffer.add_string buf
      (Printf.sprintf "BDD garbage collections: %d (peak %d live nodes)\n"
         tr.gc_runs tr.peak_live_nodes);
  let base =
    [
      ("schema", Json.String "simcov-stats/1");
      ("reachable_states", Json.Float (count_states sym tr.reached));
      ("state_space", Json.Float (state_space_size sym));
      ("iterations", Json.Int tr.iterations);
      ("time_s", Json.Float tr.total_time_s);
      ("gc_runs", Json.Int tr.gc_runs);
      ("peak_live_nodes", Json.Int tr.peak_live_nodes);
    ]
  in
  match tr.truncated with
  | Some r ->
      Buffer.add_string buf
        (Printf.sprintf "traversal truncated: out of %s after %d iterations\n"
           (Budget.resource_name r) tr.iterations);
      ok
        ~report:
          (Json.Obj (base @ [ ("truncated", Json.String (Budget.resource_name r)) ]))
        ~human:(Buffer.contents buf) 3
  | None ->
      Buffer.add_string buf
        (Printf.sprintf "valid input combinations: %.0f of %.0f\n"
           (count_valid_inputs sym) (input_space_size sym));
      Buffer.add_string buf
        (Printf.sprintf "transitions to cover: %.0f\n" (count_transitions sym));
      ok
        ~report:
          (Json.Obj
             (base
             @ [
                 ("truncated", Json.Null);
                 ("valid_inputs", Json.Float (count_valid_inputs sym));
                 ("input_space", Json.Float (input_space_size sym));
                 ("transitions", Json.Float (count_transitions sym));
               ]))
        ~human:(Buffer.contents buf) 0

(* ---- lint ---- *)

(* suite file: one input word per line, symbols as space-separated
   integer indices; '#' starts a comment *)
let load_suite path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let words = ref [] and lno = ref 0 in
        (try
           while true do
             incr lno;
             let line = input_line ic in
             let line =
               match String.index_opt line '#' with
               | Some i -> String.sub line 0 i
               | None -> line
             in
             let toks =
               String.split_on_char ' ' line
               |> List.concat_map (String.split_on_char '\t')
               |> List.filter (fun s -> s <> "")
             in
             if toks <> [] then
               words :=
                 List.map
                   (fun t ->
                     match int_of_string_opt t with
                     | Some i -> i
                     | None ->
                         failwith
                           (Printf.sprintf "line %d: '%s' is not an input index"
                              !lno t))
                   toks
                 :: !words
           done
         with End_of_file -> ());
        Ok (List.rev !words))
  with
  | Sys_error e -> Error e
  | Failure e -> Error e

let run_lint ~cache ~budget (p : Job.lint_params) =
  let finish ~truncated ~fails ~notes report_json human =
    ok ~report:report_json ~human ~notes
      (if truncated then 3 else if fails then 1 else 0)
  in
  if p.Job.li_fsm then
    match Model_cache.fsm_of_spec cache p.Job.li_model with
    | Error e -> fail 4 (Printf.sprintf "%s: %s" p.Job.li_model e)
    | Ok (m, name, key) -> (
        let suite =
          match p.Job.li_suite with
          | None -> Ok None
          | Some path -> (
              match load_suite path with
              | Ok words -> Ok (Some words)
              | Error e -> Error (Printf.sprintf "%s: %s" path e))
        in
        match suite with
        | Error e -> fail 4 e
        | Ok suite ->
            let report =
              Model_cache.fsm_lint cache ~budget ~name ~key
                ~k_bound:p.Job.li_k_bound ?suite m
            in
            finish
              ~truncated:(report.Fsm_lint.truncated <> None)
              ~fails:(Fsm_lint.fails report ~threshold:p.Job.li_fail_on)
              ~notes:[]
              (Fsm_lint.to_json report)
              (Format.asprintf "%a@." Fsm_lint.pp report))
  else
    let notes =
      if p.Job.li_suite <> None then
        [ "warning: --suite only applies to --fsm; ignored" ]
      else []
    in
    match Model_cache.circuit_of_spec cache p.Job.li_model with
    | Error e -> fail 4 (Printf.sprintf "%s: %s" p.Job.li_model e)
    | Ok (c, name, key) -> (
        let against_c =
          match p.Job.li_against with
          | None -> Ok None
          | Some spec -> (
              match Model_cache.circuit_of_spec cache spec with
              | Ok (conc, _, ckey) -> Ok (Some (conc, ckey))
              | Error e -> Error (Printf.sprintf "%s: %s" spec e))
        in
        match against_c with
        | Error e -> fail 4 e
        | Ok against ->
            let report = Model_cache.lint cache ~budget ~name ~key ?against c in
            finish
              ~truncated:(report.Lint.truncated <> None)
              ~fails:(Lint.fails report ~threshold:p.Job.li_fail_on)
              ~notes
              (Lint.to_json report)
              (Format.asprintf "%a@." Lint.pp report))

(* ---- coverage ---- *)

let run_coverage ~cache ~budget ~max_workers ~should_stop ~on_progress
    ~chaos_kill_after (p : Job.coverage_params) =
  let notes = ref [] in
  let rng = Simcov_util.Rng.create p.Job.cov_seed in
  let on_batch =
    Some
      (fun (pr : Campaign.progress) ->
        Obs.event "job.progress" ~fields:(fun () ->
            [
              ("batch", Json.Int pr.Campaign.batch);
              ("batches", Json.Int pr.Campaign.batches);
              ("faults_done", Json.Int pr.Campaign.faults_done);
              ("faults_total", Json.Int pr.Campaign.faults_total);
              ("detected", Json.Int pr.Campaign.detected_so_far);
              ("sim_steps", Json.Int pr.Campaign.sim_steps);
              ("elapsed_s", Json.Float pr.Campaign.elapsed_s);
            ]);
        match on_progress with Some f -> f pr | None -> ())
  in
  let finish ~name ~word_length ~human json pct (r : _ Campaign.report)
      interrupted =
    List.iter
      (fun (sf : Campaign.shard_failure) ->
        notes :=
          Printf.sprintf "warning: shard %d (%d faults) failed: %s"
            sf.Campaign.shard sf.Campaign.faults sf.Campaign.error
          :: !notes)
      r.Campaign.shard_failures;
    if interrupted then
      notes :=
        Printf.sprintf "interrupted: %s"
          (match (p.Job.cov_checkpoint, p.Job.cov_resume) with
          | Some f, _ | None, Some f ->
              Printf.sprintf
                "final checkpoint flushed to %s; rerun with --resume %s" f f
          | None, None -> "partial report (no --checkpoint to resume from)")
        :: !notes;
    ok
      ~report:
        (json
           [
             ("model", Json.String name);
             ("word_length", Json.Int word_length);
           ])
      ~human ~notes:(List.rev !notes) ~interrupted
      (campaign_exit ~fail_under:p.Job.cov_fail_under ~interrupted ~pct r)
  in
  let fsm_faults m =
    let n_outputs =
      List.fold_left (fun acc (_, _, _, o) -> max acc (o + 1)) 1
        (Fsm.transitions m)
    in
    Fault.sample_transfer_faults rng m ~count:p.Job.cov_count
    @ Fault.sample_output_faults rng m ~n_outputs ~count:p.Job.cov_count
  in
  let run_fsm ~name m word =
    let faults = fsm_faults m in
    let hdr =
      {
        Covdb.backend = "fsm-fault";
        run = Printf.sprintf "%s:fsm:seed%d" name p.Job.cov_seed;
        config_hash =
          config_hash ~backend:"fsm-fault" ~model:name
            (List.map Fault.key faults);
        stim_hash = stim_hash_ints word;
        word_length = List.length word;
        total = List.length faults;
      }
    in
    match
      run_persisted ~p ~chaos_kill_after ~should_stop ~notes ~hdr
        ~key:Fault.key ~run:(fun ?resume ?checkpoint ~should_stop () ->
          Detect.campaign_outcome ?on_batch ?resume ?checkpoint ~should_stop
            ~budget ~lanes:p.Job.cov_lanes ~jobs:p.Job.cov_jobs
            ?max_workers m faults word)
    with
    | Error (code, msg) -> fail code msg
    | Ok (outcome, interrupted) ->
        let r = outcome.Campaign.report in
        let human =
          Format.asprintf "%s: FSM fault coverage over %d inputs@.  %a@." name
            (List.length word) Detect.pp_report r
        in
        finish ~name ~word_length:(List.length word) ~human
          (fun extra -> Detect.to_json ~extra r)
          (Detect.coverage_pct r) r interrupted
  in
  (* random constraint-respecting stimuli for a netlist: rejection
     sampling per step, giving up on a step (and ending the word) after
     too many invalid draws *)
  let random_circuit_word c ~steps =
    let ni = Circuit.n_inputs c in
    let state = ref (Circuit.initial_state c) in
    let acc = ref [] in
    (try
       for _ = 1 to steps do
         let tries = ref 0 and found = ref None in
         while !found = None && !tries < 1000 do
           let iv = Array.init ni (fun _ -> Simcov_util.Rng.bool rng) in
           if Circuit.input_valid c !state iv then found := Some iv;
           incr tries
         done;
         match !found with
         | None -> raise Exit
         | Some iv ->
             acc := iv :: !acc;
             let s', _ = Circuit.step c !state iv in
             state := s'
       done
     with Exit -> ());
    List.rev !acc
  in
  match p.Job.cov_faults with
  | Job.Fsm_faults -> (
      if p.Job.cov_model = "dlx" then begin
        (* the DLX test model with its certified transition tour — the
           same campaign validate-dlx embeds, standalone *)
        match Model_cache.fsm_of_spec cache "dlx" with
        | Error e -> fail 4 (Printf.sprintf "dlx: %s" e)
        | Ok (m, _, _) ->
            let word =
              match Completeness.certify m with
              | Ok cert -> Completeness.padded_tour m cert
              | Error _ -> (
                  match Simcov_testgen.Tour.greedy_transition_tour m with
                  | Some t -> t.Simcov_testgen.Tour.word
                  | None ->
                      (Simcov_testgen.Tour.transition_cover m)
                        .Simcov_testgen.Tour.word)
            in
            run_fsm ~name:"dlx" m word
      end
      else
        match Model_cache.fsm_of_spec cache p.Job.cov_model with
        | Error e -> fail 4 (Printf.sprintf "%s: %s" p.Job.cov_model e)
        | Ok (m, name, _) ->
            let word =
              match Simcov_testgen.Tour.greedy_transition_tour m with
              | Some t -> t.Simcov_testgen.Tour.word
              | None ->
                  (Simcov_testgen.Tour.transition_cover m)
                    .Simcov_testgen.Tour.word
            in
            run_fsm ~name m word)
  | Job.Stuckat_faults -> (
      let spec = if p.Job.cov_model = "dlx" then "dlx-test" else p.Job.cov_model in
      match Model_cache.circuit_of_spec cache spec with
      | Error e -> fail 4 (Printf.sprintf "%s: %s" spec e)
      | Ok (c, name, _) -> (
          let word = random_circuit_word c ~steps:p.Job.cov_steps in
          let faults = Stuckat.all_faults c in
          let hdr =
            {
              Covdb.backend = "stuck-at";
              run = Printf.sprintf "%s:stuckat:seed%d" name p.Job.cov_seed;
              config_hash =
                config_hash ~backend:"stuck-at" ~model:name
                  (List.map Stuckat.fault_key faults);
              stim_hash = stim_hash_bits word;
              word_length = List.length word;
              total = List.length faults;
            }
          in
          match
            run_persisted ~p ~chaos_kill_after ~should_stop ~notes ~hdr
              ~key:Stuckat.fault_key
              ~run:(fun ?resume ?checkpoint ~should_stop () ->
                Stuckat.campaign_outcome ?on_batch ?resume ?checkpoint
                  ~should_stop ~budget ~lanes:p.Job.cov_lanes
                  ~jobs:p.Job.cov_jobs ?max_workers c faults word)
          with
          | Error (code, msg) -> fail code msg
          | Ok (outcome, interrupted) ->
              let r = outcome.Campaign.report in
              let human =
                Format.asprintf "%s: stuck-at coverage over %d vectors@.  %a@."
                  name (List.length word) Stuckat.pp_report r
              in
              finish ~name ~word_length:(List.length word) ~human
                (fun extra -> Stuckat.to_json ~extra r)
                (Stuckat.coverage_pct r) r interrupted))

(* ---- merge / minimize ---- *)

(* shared loader: salvage-tolerant (a damaged snapshot contributes its
   valid prefix, with a warning), but an unreadable file or corrupt
   header is exit 4 *)
let load_dbs ~notes paths =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match Covdb.load p with
        | Error e -> Error (Printf.sprintf "%s: %s" p e)
        | Ok { Covdb.db; salvaged } ->
            if salvaged then
              notes :=
                Printf.sprintf
                  "warning: %s: damaged snapshot; salvaged %d valid records" p
                  (Covdb.n_records db)
                :: !notes;
            go ((p, db) :: acc) rest)
  in
  go [] paths

let run_merge ~inputs ~output =
  let notes = ref [] in
  match load_dbs ~notes inputs with
  | Error e -> fail 4 e
  | Ok dbs -> (
      match Covdb.merge (List.map snd dbs) with
      | Error e -> fail 4 e
      | Ok out ->
          Covdb.save out output;
          let u, e, d = Covdb.counts out in
          let report =
            let open Json in
            Obj
              [
                ("schema", String "simcov-merge/1");
                ( "inputs",
                  List
                    (List.map
                       (fun (p, db) ->
                         let _, _, di = Covdb.counts db in
                         Obj
                           [
                             ("path", String p);
                             ("run", String (Covdb.header db).Covdb.run);
                             ("records", Int (Covdb.n_records db));
                             ("detected", Int di);
                             ("complete", Bool (Covdb.complete db));
                           ])
                       dbs) );
                ("output", String output);
                ("records", Int (Covdb.n_records out));
                ("undetected", Int u);
                ("excited", Int e);
                ("detected", Int d);
                ("complete", Bool (Covdb.complete out));
              ]
          in
          let human =
            Printf.sprintf
              "merged %d snapshots -> %s: %d records (%d detected, %d \
               excited-only, %d undetected)%s\n"
              (List.length dbs) output (Covdb.n_records out) d e u
              (if Covdb.complete out then "" else " [incomplete]")
          in
          ok ~report ~human ~notes:(List.rev !notes) 0)

let run_minimize ~inputs =
  let notes = ref [] in
  match load_dbs ~notes inputs with
  | Error e -> fail 4 e
  | Ok dbs -> (
      match Covdb.minimize dbs with
      | Error e -> fail 4 e
      | Ok sel ->
          let report =
            let open Json in
            Obj
              [
                ("schema", String "simcov-minimize/1");
                ( "selected",
                  List
                    (List.map
                       (fun (path, gain) ->
                         Obj
                           [ ("path", String path); ("new_covered", Int gain) ])
                       sel.Covdb.chosen) );
                ("covered", Int sel.Covdb.covered);
                ("union_detected", Int sel.Covdb.union_detected);
              ]
          in
          let buf = Buffer.create 128 in
          Buffer.add_string buf
            (Printf.sprintf "%d of %d runs cover %d/%d detected faults:\n"
               (List.length sel.Covdb.chosen)
               (List.length dbs) sel.Covdb.covered sel.Covdb.union_detected);
          List.iter
            (fun (path, gain) ->
              Buffer.add_string buf (Printf.sprintf "  %s (+%d)\n" path gain))
            sel.Covdb.chosen;
          ok ~report ~human:(Buffer.contents buf) ~notes:(List.rev !notes) 0)

(* ---- dispatch ---- *)

let run ?(cache = Model_cache.shared) ?max_workers
    ?(should_stop = fun () -> false) ?on_progress ?chaos_kill_after
    (job : Job.t) =
  let budget =
    match (job.Job.timeout_s, job.Job.max_nodes) with
    | None, None -> Budget.unlimited
    | timeout_s, max_nodes -> Budget.create ?timeout_s ?max_nodes ()
  in
  Obs.event "job.start" ~fields:(fun () ->
      [
        ("kind", Json.String (Job.kind job));
        ( "id",
          match job.Job.id with Some i -> Json.String i | None -> Json.Null );
      ]);
  let outcome =
    try
      match job.Job.spec with
      | Job.Validate_dlx p -> run_validate ~budget p
      | Job.Stats p -> run_stats ~cache ~budget p
      | Job.Lint p -> run_lint ~cache ~budget p
      | Job.Coverage p ->
          run_coverage ~cache ~budget ~max_workers ~should_stop ~on_progress
            ~chaos_kill_after p
      | Job.Merge { inputs; output } -> run_merge ~inputs ~output
      | Job.Minimize { inputs } -> run_minimize ~inputs
    with
    | Budget.Budget_exceeded r ->
        fail 3
          (Printf.sprintf "resource limit exceeded (out of %s)"
             (Budget.resource_name r))
    | Simcov_bdd.Bdd.Node_limit live ->
        fail 3 (Printf.sprintf "BDD node ceiling reached (%d nodes live)" live)
  in
  Obs.event "job.done" ~fields:(fun () ->
      [
        ("kind", Json.String (Job.kind job));
        ("exit_code", Json.Int outcome.exit_code);
        ("interrupted", Json.Bool outcome.interrupted);
      ]);
  outcome
