(** Job execution: one entry point that runs any {!Job.t}.

    This is the engine the CLI subcommands and the daemon share. A
    call builds the job's own {!Simcov_util.Budget} from [timeout_s] /
    [max_nodes], resolves models through a {!Model_cache.t}, runs the
    work, and returns everything the two front-ends need to render:
    the exit code, the versioned JSON report, the human-readable text,
    warnings for stderr, and the fatal error (if any) — without ever
    printing, exiting, or touching signal handlers itself. Campaign
    jobs get the full crash-safety treatment the CLI used to wire up
    inline: [--resume] validation (config/stimulus fingerprints),
    periodic durable checkpoints via {!Simcov_covdb.Covdb}, and a
    clean batch-boundary stop when [should_stop] flips.

    Report schemas by job kind: [validate-dlx] → [simcov-validate/1],
    [lint] → [simcov-lint/1] or [simcov-fsmlint/1], [coverage] →
    [simcov-campaign/1], [merge] → [simcov-merge/1], [minimize] →
    [simcov-minimize/1], [stats] → [simcov-stats/1].

    Observability: the run emits [job.start] / [job.progress] /
    [job.done] trace events and the usual engine metrics on the {e
    current} {!Simcov_obs.Obs} registry — the caller chooses the scope
    (the one-shot CLI stays on the default registry; the pool installs
    a per-job one). *)

module Json = Simcov_util.Json

type outcome = {
  exit_code : int;
      (** the CLI exit-code contract: 0 success, 1 validation failed,
          3 resource limit, 4 malformed input, 5 degraded shards,
          130 interrupted *)
  report : Json.t option;
      (** the versioned machine-readable report; [None] only when the
          job failed before producing one *)
  human : string;  (** human-readable report text ([""] when absent) *)
  notes : string list;  (** warnings, for stderr *)
  error : string option;  (** fatal error message (without prefix) *)
  interrupted : bool;  (** [should_stop] cut the run short *)
}

val run :
  ?cache:Model_cache.t ->
  ?max_workers:int ->
  ?should_stop:(unit -> bool) ->
  ?on_progress:(Simcov_campaign.Campaign.progress -> unit) ->
  ?chaos_kill_after:int ->
  Job.t ->
  outcome
(** Execute one job to completion (or interruption).

    [cache] defaults to {!Model_cache.shared}. [max_workers] caps the
    domains a sharded campaign may run concurrently without changing
    its report (see {!Simcov_campaign.Campaign}); the pool passes its
    domain-token allowance here. [should_stop] is polled at batch
    boundaries; a sticky [true] drains the campaign through its
    checkpoint and yields [interrupted = true] with exit code 130.
    [on_progress] receives per-batch campaign progress (in addition to
    the [job.progress] trace events, which fire regardless).
    [chaos_kill_after] is the CLI chaos-harness hook (SIGKILL after
    the N-th checkpoint flush). *)

val status_of : outcome -> Job.status
(** The envelope status an outcome maps to: [Interrupted] when
    interrupted, [Failed] when [error] is set, [Done] otherwise. *)
