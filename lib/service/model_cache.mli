(** Content-hash-keyed cache of resolved models and static-analysis
    verdicts.

    The service resolves the same MODEL arguments over and over — the
    DLX builtins, a circuit file submitted by every job of a sweep —
    and parsing, tabulating and linting them dominates small-job
    latency. This cache memoizes the three expensive resolution steps
    behind content fingerprints:

    - {e circuits}: a file is keyed by the (byte length, CRC-32) pair
      of its raw bytes ([file:<len>:<crc>]), a builtin by its name
      ([builtin:<name>]), so an edited file misses while an unchanged
      one skips the parse. The length matters: CRC-32 alone is 32 bits
      — casually collidable, and a long-lived daemon serving each
      other's cached verdicts across a collision would be silent data
      corruption. Each cached circuit also carries its {e canonical
      key} — the same fingerprint of its canonical serialization
      ([circ:<len>:<crc>]) — which identifies the circuit by content
      regardless of how it was named or formatted.
    - {e tabulated FSMs}: keyed by the canonical key of the circuit
      they were enumerated from ([fsm:<canonical>]), or by builtin name
      for the explicit test models.
    - {e lint verdicts}: netlist reports keyed
      [lint:<canonical>:<against-canonical|->], FSM reports
      [fsmlint:<fsm-key>:k<bound>]. Only untruncated reports are
      cached — a verdict cut short by one job's budget must not be
      served to a job with a larger one. Suite-carrying FSM lint runs
      are never cached (the suite file is outside the key).

    Entries are bounded by total estimated bytes and entry count and
    evicted least-recently-used. Hits, misses and evictions are
    counted on the [service.cache.*] metrics of the {e current}
    {!Simcov_obs.Obs} registry — under the service's per-job scoping,
    each job's snapshot shows its own cache traffic.

    All operations are domain-safe (one internal mutex); concurrent
    misses on the same key may both compute, last store wins. *)

module Budget = Simcov_util.Budget

type t

val create : ?max_bytes:int -> ?max_entries:int -> unit -> t
(** Defaults: 64 MiB, 256 entries. *)

val shared : t
(** The process-wide cache the service uses by default. *)

val circuit_of_spec :
  t -> string -> (Simcov_netlist.Circuit.t * string * string, string) result
(** [circuit_of_spec cache spec] resolves a MODEL argument exactly like
    the CLI: [dlx-control] / [dlx-test] builtins, anything else a
    serialized-circuit path. Returns
    [(circuit, display_name, canonical_key)]; [Error msg] on an
    unreadable or malformed file. *)

val fsm_of_spec :
  t -> string -> (Simcov_fsm.Fsm.t * string * string, string) result
(** An FSM MODEL argument: [dlx] / [dlx-test] / [dsp] builtins, or any
    circuit small enough for [Circuit.to_fsm] to enumerate. Returns the
    tabulated machine, its display name and its cache key. *)

val lint :
  t ->
  budget:Budget.t ->
  name:string ->
  key:string ->
  ?against:Simcov_netlist.Circuit.t * string ->
  Simcov_netlist.Circuit.t ->
  Simcov_analysis.Lint.report
(** Cached [Lint.run]. [key] is the circuit's canonical key (from
    {!circuit_of_spec}); [against] carries the concrete circuit and
    {e its} canonical key. *)

val fsm_lint :
  t ->
  budget:Budget.t ->
  name:string ->
  key:string ->
  k_bound:int ->
  ?suite:int list list ->
  Simcov_fsm.Fsm.t ->
  Simcov_analysis.Fsm_lint.report
(** Cached [Fsm_lint.run]. [key] is the machine's cache key (from
    {!fsm_of_spec}). Runs with [?suite] bypass the cache. *)

type sym_entry = {
  sym : Simcov_symbolic.Symfsm.t;
  s_reorder : bool;
      (** built under a reorder-enabled job: {!reorder_cached} may
          sift it between jobs *)
  s_lock : Mutex.t;
      (** hold while using [sym] — jobs share the live BDD manager *)
}

val sym_of_circuit :
  t ->
  reorder:Job.reorder_mode ->
  canonical:string ->
  (unit -> Simcov_symbolic.Symfsm.t) ->
  sym_entry
(** Cached compiled symbolic machine, keyed
    [sym:<canonical>:<reorder-mode>] — the mode is part of the key so
    a [Reorder_off] job can never observe a variable order mutated by
    an [on]/[auto] job. The caller must lock [s_lock] while operating
    on the machine (and re-attach its budget first:
    {!Simcov_symbolic.Symfsm.attach_budget}). *)

val reorder_cached : t -> unit
(** One best-effort sifting pass over every cached reorder-enabled
    manager, skipping (not waiting for) any whose [s_lock] is held by
    a running job. The daemon's worker loop calls this between jobs
    when the eviction hook has signalled cache pressure. *)

val set_eviction_hook : t -> (unit -> unit) -> unit
(** Install a callback fired (outside the cache lock) after any store
    that evicted at least one entry — the daemon uses it to schedule a
    between-jobs {!reorder_cached}. Last hook wins. *)

val counts : t -> int * int * int
(** [(hits, misses, evictions)] since creation — the same totals the
    [service.cache.*] metrics accumulate per registry, aggregated
    process-wide for tests. *)

val stats : t -> int * int
(** [(entries, bytes)] currently held. *)
