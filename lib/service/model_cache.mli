(** Content-hash-keyed cache of resolved models and static-analysis
    verdicts.

    The service resolves the same MODEL arguments over and over — the
    DLX builtins, a circuit file submitted by every job of a sweep —
    and parsing, tabulating and linting them dominates small-job
    latency. This cache memoizes the three expensive resolution steps
    behind content fingerprints:

    - {e circuits}: a file is keyed by the CRC-32 of its raw bytes
      ([file:<crc>]), a builtin by its name ([builtin:<name>]), so an
      edited file misses while an unchanged one skips the parse. Each
      cached circuit also carries its {e canonical key} — the CRC-32 of
      its canonical serialization — which identifies the circuit by
      content regardless of how it was named or formatted.
    - {e tabulated FSMs}: keyed by the canonical key of the circuit
      they were enumerated from ([fsm:<canonical>]), or by builtin name
      for the explicit test models.
    - {e lint verdicts}: netlist reports keyed
      [lint:<canonical>:<against-canonical|->], FSM reports
      [fsmlint:<fsm-key>:k<bound>]. Only untruncated reports are
      cached — a verdict cut short by one job's budget must not be
      served to a job with a larger one. Suite-carrying FSM lint runs
      are never cached (the suite file is outside the key).

    Entries are bounded by total estimated bytes and entry count and
    evicted least-recently-used. Hits, misses and evictions are
    counted on the [service.cache.*] metrics of the {e current}
    {!Simcov_obs.Obs} registry — under the service's per-job scoping,
    each job's snapshot shows its own cache traffic.

    All operations are domain-safe (one internal mutex); concurrent
    misses on the same key may both compute, last store wins. *)

module Budget = Simcov_util.Budget

type t

val create : ?max_bytes:int -> ?max_entries:int -> unit -> t
(** Defaults: 64 MiB, 256 entries. *)

val shared : t
(** The process-wide cache the service uses by default. *)

val circuit_of_spec :
  t -> string -> (Simcov_netlist.Circuit.t * string * string, string) result
(** [circuit_of_spec cache spec] resolves a MODEL argument exactly like
    the CLI: [dlx-control] / [dlx-test] builtins, anything else a
    serialized-circuit path. Returns
    [(circuit, display_name, canonical_key)]; [Error msg] on an
    unreadable or malformed file. *)

val fsm_of_spec :
  t -> string -> (Simcov_fsm.Fsm.t * string * string, string) result
(** An FSM MODEL argument: [dlx] / [dlx-test] / [dsp] builtins, or any
    circuit small enough for [Circuit.to_fsm] to enumerate. Returns the
    tabulated machine, its display name and its cache key. *)

val lint :
  t ->
  budget:Budget.t ->
  name:string ->
  key:string ->
  ?against:Simcov_netlist.Circuit.t * string ->
  Simcov_netlist.Circuit.t ->
  Simcov_analysis.Lint.report
(** Cached [Lint.run]. [key] is the circuit's canonical key (from
    {!circuit_of_spec}); [against] carries the concrete circuit and
    {e its} canonical key. *)

val fsm_lint :
  t ->
  budget:Budget.t ->
  name:string ->
  key:string ->
  k_bound:int ->
  ?suite:int list list ->
  Simcov_fsm.Fsm.t ->
  Simcov_analysis.Fsm_lint.report
(** Cached [Fsm_lint.run]. [key] is the machine's cache key (from
    {!fsm_of_spec}). Runs with [?suite] bypass the cache. *)

val counts : t -> int * int * int
(** [(hits, misses, evictions)] since creation — the same totals the
    [service.cache.*] metrics accumulate per registry, aggregated
    process-wide for tests. *)

val stats : t -> int * int
(** [(entries, bytes)] currently held. *)
