module Json = Simcov_util.Json

(* ---- line-oriented connection plumbing ---- *)

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;  (** worker domains and the handler both write *)
  dead : bool Atomic.t;  (** a write failed: the peer went away *)
}

let conn_of_fd fd =
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    wlock = Mutex.create ();
    dead = Atomic.make false;
  }

(* one line out, atomically; a failed write marks the connection dead
   instead of raising into the job engine *)
let send conn line =
  if not (Atomic.get conn.dead) then
    Mutex.protect conn.wlock (fun () ->
        try
          output_string conn.oc line;
          output_char conn.oc '\n';
          flush conn.oc
        with Sys_error _ | Unix.Unix_error _ -> Atomic.set conn.dead true)

let close_conn conn =
  (try flush conn.oc with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let recv_line conn = try Some (input_line conn.ic) with End_of_file -> None

(* ---- server ---- *)

let jtrue = Json.Bool true
let jfalse = Json.Bool false

let rejected_envelope ~id ~kind msg =
  Job.envelope ~id ~kind ~status:Job.Rejected ~exit_code:6 ~error:msg ()

let handle_job pool conn request_json job =
  (* a one-slot mailbox: the worker's on_done fills it, we wait *)
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let result = ref None in
  let on_done env =
    Mutex.protect lock (fun () ->
        result := Some env;
        Condition.signal cond)
  in
  match Pool.submit pool ~on_line:(send conn) ~on_done job with
  | Error reason ->
      let id =
        match job.Job.id with Some i -> i | None -> "-"
      in
      send conn (Json.to_string ~indent:0 (rejected_envelope ~id ~kind:(Job.kind job) reason))
  | Ok id ->
      (* if the client hangs up mid-stream, stop paying for the job *)
      let rec await () =
        let env =
          Mutex.protect lock (fun () ->
              let deadline_wait () =
                match !result with
                | Some env -> Some env
                | None ->
                    Condition.wait cond lock;
                    !result
              in
              deadline_wait ())
        in
        match env with
        | Some env -> send conn (Json.to_string ~indent:0 env)
        | None ->
            if Atomic.get conn.dead then ignore (Pool.cancel pool id);
            await ()
      in
      ignore request_json;
      await ()

let handle_op pool conn j =
  match Json.member "op" j with
  | Some (Json.String "jobs") ->
      send conn (Json.to_string ~indent:0 (Pool.list pool))
  | Some (Json.String "ping") ->
      send conn (Json.to_string ~indent:0 (Json.Obj [ ("ok", jtrue) ]))
  | Some (Json.String "cancel") ->
      let id =
        match Json.member "id" j with Some (Json.String s) -> s | _ -> ""
      in
      let ok = id <> "" && Pool.cancel pool id in
      send conn
        (Json.to_string ~indent:0
           (Json.Obj
              [ ("ok", if ok then jtrue else jfalse); ("id", Json.String id) ]))
  | Some (Json.String op) ->
      send conn
        (Json.to_string ~indent:0
           (rejected_envelope ~id:"-" ~kind:"?"
              (Printf.sprintf "unknown op '%s'" op)))
  | Some _ | None -> (
      (* not an op: a job request *)
      match Job.of_json j with
      | Error msg ->
          let id =
            match Json.member "id" j with Some (Json.String s) -> s | _ -> "-"
          in
          send conn (Json.to_string ~indent:0 (rejected_envelope ~id ~kind:"?" msg))
      | Ok job -> handle_job pool conn j job)

let handle_connection pool fd =
  let conn = conn_of_fd fd in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      match recv_line conn with
      | None -> ()
      | Some line -> (
          match Json.parse line with
          | Error msg ->
              send conn
                (Json.to_string ~indent:0
                   (rejected_envelope ~id:"-" ~kind:"?"
                      (Printf.sprintf "malformed request: %s" msg)))
          | Ok j -> handle_op pool conn j))

let serve ~socket ?queue_limit ?workers ?domain_tokens ?cache () =
  let setup () =
    try
      (* a live daemon would fail the bind below anyway; a stale file
         from a killed one must not *)
      if Sys.file_exists socket then Unix.unlink socket;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 16;
      Ok fd
    with Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
  in
  match setup () with
  | Error _ as e -> e
  | Ok listen_fd ->
      let pool = Pool.create ?cache ?queue_limit ?workers ?domain_tokens () in
      let stop = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      let prev_term = Sys.signal Sys.sigterm on_signal in
      let prev_int = Sys.signal Sys.sigint on_signal in
      let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let conns = ref [] in
      (* accept with a short poll so a SIGTERM between connections is
         noticed promptly *)
      let rec accept_loop () =
        if not (Atomic.get stop) then begin
          (match Unix.select [ listen_fd ] [] [] 0.2 with
          | [ _ ], _, _ -> (
              match Unix.accept listen_fd with
              | fd, _ ->
                  conns :=
                    Domain.spawn (fun () -> handle_connection pool fd) :: !conns
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      (* drain: stop the queue through the durable checkpoint path;
         every open connection still gets its final envelope *)
      Pool.drain pool;
      List.iter Domain.join !conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigpipe prev_pipe;
      Ok ()

(* ---- clients ---- *)

let with_conn ~socket f =
  match
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      Ok (conn_of_fd fd)
    with Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
  with
  | Error _ as e -> e
  | Ok conn -> Fun.protect ~finally:(fun () -> close_conn conn) (fun () -> f conn)

let one_shot ~socket request =
  with_conn ~socket (fun conn ->
      send conn (Json.to_string ~indent:0 request);
      if Atomic.get conn.dead then Error "connection lost while sending"
      else
        match recv_line conn with
        | None -> Error "connection closed without a reply"
        | Some line -> (
            match Json.parse line with
            | Error msg -> Error (Printf.sprintf "malformed reply: %s" msg)
            | Ok j -> Ok j))

let submit ~socket ?(on_event = fun _ -> ()) job =
  with_conn ~socket (fun conn ->
      send conn (Json.to_string ~indent:0 (Job.to_json job));
      if Atomic.get conn.dead then Error "connection lost while sending"
      else
        let rec read_until_envelope () =
          match recv_line conn with
          | None -> Error "connection closed before the final envelope"
          | Some line -> (
              match Json.parse line with
              | Error msg -> Error (Printf.sprintf "malformed stream line: %s" msg)
              | Ok j -> (
                  (* the envelope is the only line with a status *)
                  match Json.member "status" j with
                  | Some _ -> Ok j
                  | None ->
                      on_event j;
                      read_until_envelope ()))
        in
        read_until_envelope ())

let list_jobs ~socket = one_shot ~socket (Json.Obj [ ("op", Json.String "jobs") ])

let cancel_job ~socket ~id =
  one_shot ~socket
    (Json.Obj [ ("op", Json.String "cancel"); ("id", Json.String id) ])

let ping ~socket = one_shot ~socket (Json.Obj [ ("op", Json.String "ping") ])
