module Json = Simcov_util.Json
module Diag = Simcov_analysis.Diag

type reorder_mode = Reorder_off | Reorder_on | Reorder_auto

let reorder_name = function
  | Reorder_off -> "off"
  | Reorder_on -> "on"
  | Reorder_auto -> "auto"

let reorder_of_name = function
  | "off" -> Some Reorder_off
  | "on" -> Some Reorder_on
  | "auto" -> Some Reorder_auto
  | _ -> None

type validate_params = {
  va_regs : int;
  va_track_dest : bool;
  va_observable_dest : bool;
  va_seed : int;
  va_lanes : int;
  va_jobs : int;
  va_reorder : reorder_mode;
}

type lint_params = {
  li_model : string;
  li_against : string option;
  li_fsm : bool;
  li_suite : string option;
  li_k_bound : int;
  li_fail_on : Diag.severity;
}

type fault_kind = Fsm_faults | Stuckat_faults

type coverage_params = {
  cov_model : string;
  cov_faults : fault_kind;
  cov_seed : int;
  cov_count : int;
  cov_steps : int;
  cov_fail_under : float option;
  cov_lanes : int;
  cov_jobs : int;
  cov_checkpoint : string option;
  cov_checkpoint_every : int;
  cov_resume : string option;
  cov_reorder : reorder_mode;
}

type stats_params = { st_reorder : reorder_mode }

type spec =
  | Validate_dlx of validate_params
  | Lint of lint_params
  | Coverage of coverage_params
  | Merge of { inputs : string list; output : string }
  | Minimize of { inputs : string list }
  | Stats of stats_params

type t = {
  id : string option;
  spec : spec;
  timeout_s : float option;
  max_nodes : int option;
}

let schema_id = "simcov-job/1"

let kind t =
  match t.spec with
  | Validate_dlx _ -> "validate-dlx"
  | Lint _ -> "lint"
  | Coverage _ -> "coverage"
  | Merge _ -> "merge"
  | Minimize _ -> "minimize"
  | Stats _ -> "stats"

(* defaults mirror the CLI flag defaults exactly: a job built from an
   empty params object runs the same experiment the bare subcommand
   would *)
let default_validate =
  {
    va_regs = 4;
    va_track_dest = true;
    va_observable_dest = true;
    va_seed = 2026;
    va_lanes = Sys.int_size;
    va_jobs = 1;
    va_reorder = Reorder_off;
  }

let default_lint ~model =
  {
    li_model = model;
    li_against = None;
    li_fsm = false;
    li_suite = None;
    li_k_bound = 8;
    li_fail_on = Diag.Error;
  }

let default_coverage ~model =
  {
    cov_model = model;
    cov_faults = Fsm_faults;
    cov_seed = 2026;
    cov_count = 150;
    cov_steps = 256;
    cov_fail_under = None;
    cov_lanes = Sys.int_size;
    cov_jobs = 1;
    cov_checkpoint = None;
    cov_checkpoint_every = 1;
    cov_resume = None;
    cov_reorder = Reorder_off;
  }

let default_stats = { st_reorder = Reorder_off }

let make ?id ?timeout_s ?max_nodes spec = { id; spec; timeout_s; max_nodes }

(* ---- rendering ---- *)

let opt_str name = function
  | None -> []
  | Some s -> [ (name, Json.String s) ]

let opt_float name = function
  | None -> []
  | Some f -> [ (name, Json.Float f) ]

let opt_int name = function None -> [] | Some i -> [ (name, Json.Int i) ]

(* [Reorder_off] is the wire default and is omitted when rendering, so
   every pre-reorder request and its echo stay byte-identical *)
let opt_reorder = function
  | Reorder_off -> []
  | m -> [ ("reorder", Json.String (reorder_name m)) ]

let params_json = function
  | Validate_dlx p ->
      Json.Obj
        ([
           ("regs", Json.Int p.va_regs);
           ("track_dest", Json.Bool p.va_track_dest);
           ("observable_dest", Json.Bool p.va_observable_dest);
           ("seed", Json.Int p.va_seed);
           ("lanes", Json.Int p.va_lanes);
           ("jobs", Json.Int p.va_jobs);
         ]
        @ opt_reorder p.va_reorder)
  | Lint p ->
      Json.Obj
        ([ ("model", Json.String p.li_model) ]
        @ opt_str "against" p.li_against
        @ [ ("fsm", Json.Bool p.li_fsm) ]
        @ opt_str "suite" p.li_suite
        @ [
            ("k_bound", Json.Int p.li_k_bound);
            ("fail_on", Json.String (Diag.severity_name p.li_fail_on));
          ])
  | Coverage p ->
      Json.Obj
        ([
           ("model", Json.String p.cov_model);
           ( "faults",
             Json.String
               (match p.cov_faults with
               | Fsm_faults -> "fsm"
               | Stuckat_faults -> "stuckat") );
           ("seed", Json.Int p.cov_seed);
           ("count", Json.Int p.cov_count);
           ("steps", Json.Int p.cov_steps);
         ]
        @ opt_float "fail_under" p.cov_fail_under
        @ [ ("lanes", Json.Int p.cov_lanes); ("jobs", Json.Int p.cov_jobs) ]
        @ opt_str "checkpoint" p.cov_checkpoint
        @ [ ("checkpoint_every", Json.Int p.cov_checkpoint_every) ]
        @ opt_str "resume" p.cov_resume
        @ opt_reorder p.cov_reorder)
  | Merge { inputs; output } ->
      Json.Obj
        [
          ("inputs", Json.List (List.map (fun s -> Json.String s) inputs));
          ("output", Json.String output);
        ]
  | Minimize { inputs } ->
      Json.Obj
        [ ("inputs", Json.List (List.map (fun s -> Json.String s) inputs)) ]
  | Stats p -> Json.Obj (opt_reorder p.st_reorder)

let to_json t =
  Json.Obj
    ([ ("schema", Json.String schema_id); ("kind", Json.String (kind t)) ]
    @ opt_str "id" t.id
    @ opt_float "timeout_s" t.timeout_s
    @ opt_int "max_nodes" t.max_nodes
    @ [ ("params", params_json t.spec) ])

(* ---- parsing ---- *)

(* every accessor returns the default on a *missing* field but errors
   on an ill-typed one: silently coercing a mistyped request would run
   the wrong experiment *)
exception Bad of string

let get_field obj name = Json.member name obj

let get_int obj name ~default =
  match get_field obj name with
  | None -> default
  | Some (Json.Int i) -> i
  | Some _ -> raise (Bad (Printf.sprintf "field '%s' must be an integer" name))

let get_bool obj name ~default =
  match get_field obj name with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> raise (Bad (Printf.sprintf "field '%s' must be a boolean" name))

let get_str obj name ~default =
  match get_field obj name with
  | None -> default
  | Some (Json.String s) -> s
  | Some _ -> raise (Bad (Printf.sprintf "field '%s' must be a string" name))

let get_str_opt obj name =
  match get_field obj name with
  | None | Some Json.Null -> None
  | Some (Json.String s) -> Some s
  | Some _ -> raise (Bad (Printf.sprintf "field '%s' must be a string" name))

let get_float_opt obj name =
  match get_field obj name with
  | None | Some Json.Null -> None
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some _ -> raise (Bad (Printf.sprintf "field '%s' must be a number" name))

let get_int_opt obj name =
  match get_field obj name with
  | None | Some Json.Null -> None
  | Some (Json.Int i) -> Some i
  | Some _ -> raise (Bad (Printf.sprintf "field '%s' must be an integer" name))

let get_str_list obj name =
  match get_field obj name with
  | None -> raise (Bad (Printf.sprintf "field '%s' is required" name))
  | Some (Json.List l) ->
      List.map
        (function
          | Json.String s -> s
          | _ ->
              raise (Bad (Printf.sprintf "field '%s' must list strings" name)))
        l
  | Some _ -> raise (Bad (Printf.sprintf "field '%s' must be a list" name))

let require_str obj name =
  match get_str_opt obj name with
  | Some s -> s
  | None -> raise (Bad (Printf.sprintf "field '%s' is required" name))

let get_reorder params =
  let s = get_str params "reorder" ~default:"off" in
  match reorder_of_name s with
  | Some m -> m
  | None -> raise (Bad (Printf.sprintf "unknown reorder mode '%s'" s))

let spec_of ~kind params =
  match kind with
  | "validate-dlx" ->
      let d = default_validate in
      Validate_dlx
        {
          va_regs = get_int params "regs" ~default:d.va_regs;
          va_track_dest = get_bool params "track_dest" ~default:d.va_track_dest;
          va_observable_dest =
            get_bool params "observable_dest" ~default:d.va_observable_dest;
          va_seed = get_int params "seed" ~default:d.va_seed;
          va_lanes = get_int params "lanes" ~default:d.va_lanes;
          va_jobs = get_int params "jobs" ~default:d.va_jobs;
          va_reorder = get_reorder params;
        }
  | "lint" ->
      let model = require_str params "model" in
      let d = default_lint ~model in
      let fail_on =
        let s = get_str params "fail_on" ~default:"error" in
        match Diag.severity_of_name s with
        | Some sev -> sev
        | None -> raise (Bad (Printf.sprintf "unknown severity '%s'" s))
      in
      Lint
        {
          li_model = model;
          li_against = get_str_opt params "against";
          li_fsm = get_bool params "fsm" ~default:d.li_fsm;
          li_suite = get_str_opt params "suite";
          li_k_bound = get_int params "k_bound" ~default:d.li_k_bound;
          li_fail_on = fail_on;
        }
  | "coverage" ->
      let model = get_str params "model" ~default:"dlx" in
      let d = default_coverage ~model in
      let faults =
        match get_str params "faults" ~default:"fsm" with
        | "fsm" -> Fsm_faults
        | "stuckat" -> Stuckat_faults
        | s -> raise (Bad (Printf.sprintf "unknown fault kind '%s'" s))
      in
      Coverage
        {
          cov_model = model;
          cov_faults = faults;
          cov_seed = get_int params "seed" ~default:d.cov_seed;
          cov_count = get_int params "count" ~default:d.cov_count;
          cov_steps = get_int params "steps" ~default:d.cov_steps;
          cov_fail_under = get_float_opt params "fail_under";
          cov_lanes = get_int params "lanes" ~default:d.cov_lanes;
          cov_jobs = get_int params "jobs" ~default:d.cov_jobs;
          cov_checkpoint = get_str_opt params "checkpoint";
          cov_checkpoint_every =
            get_int params "checkpoint_every" ~default:d.cov_checkpoint_every;
          cov_resume = get_str_opt params "resume";
          cov_reorder = get_reorder params;
        }
  | "merge" ->
      Merge
        {
          inputs = get_str_list params "inputs";
          output = require_str params "output";
        }
  | "minimize" -> Minimize { inputs = get_str_list params "inputs" }
  | "stats" -> Stats { st_reorder = get_reorder params }
  | k -> raise (Bad (Printf.sprintf "unknown job kind '%s'" k))

let of_json j =
  match j with
  | Json.Obj _ -> (
      try
        (match get_field j "schema" with
        | None -> ()
        | Some (Json.String s) when s = schema_id -> ()
        | Some (Json.String s) ->
            raise (Bad (Printf.sprintf "unsupported schema '%s'" s))
        | Some _ -> raise (Bad "field 'schema' must be a string"));
        let kind = require_str j "kind" in
        let params =
          match get_field j "params" with
          | None -> Json.Obj []
          | Some (Json.Obj _ as p) -> p
          | Some _ -> raise (Bad "field 'params' must be an object")
        in
        Ok
          {
            id = get_str_opt j "id";
            spec = spec_of ~kind params;
            timeout_s = get_float_opt j "timeout_s";
            max_nodes = get_int_opt j "max_nodes";
          }
      with Bad msg -> Error msg)
  | _ -> Error "a job must be a JSON object"

(* ---- result envelope ---- *)

type status = Done | Failed | Interrupted | Cancelled | Rejected

let status_name = function
  | Done -> "done"
  | Failed -> "failed"
  | Interrupted -> "interrupted"
  | Cancelled -> "cancelled"
  | Rejected -> "rejected"

let envelope ~id ~kind ~status ~exit_code ?error ?report () =
  Json.Obj
    ([
       ("schema", Json.String schema_id);
       ("id", Json.String id);
       ("kind", Json.String kind);
       ("status", Json.String (status_name status));
       ("exit_code", Json.Int exit_code);
     ]
    @ (match error with None -> [] | Some e -> [ ("error", Json.String e) ])
    @ match report with None -> [] | Some r -> [ ("report", r) ])
