module Json = Simcov_util.Json
module Obs = Simcov_obs.Obs

type jstate = Queued | Running | Finished of Job.status

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Finished s -> Job.status_name s

type rec_job = {
  rj_id : string;
  rj_job : Job.t;
  rj_on_line : string -> unit;
  rj_on_done : Json.t -> unit;
  rj_cancel : bool Atomic.t;
  mutable rj_state : jstate;
}

type t = {
  cache : Model_cache.t;
  queue_limit : int;
  lock : Mutex.t;
  cond : Condition.t;  (** signaled on enqueue and drain *)
  done_cond : Condition.t;  (** signaled when a job resolves *)
  queue : rec_job Queue.t;
  jobs : (string, rec_job) Hashtbl.t;
  mutable order : string list;  (** submission order, reversed *)
  mutable next_id : int;
  mutable pending : int;  (** queued + running *)
  mutable draining : bool;
  stop_all : bool Atomic.t;
  tokens : int Atomic.t;
  reorder_pending : bool Atomic.t;
      (** cache pressure seen — sift cached managers between jobs *)
  mutable domains : unit Domain.t list;
}

(* ---- the global domain-token budget ---- *)

(* take up to [want] tokens, never blocking: a campaign that asked for
   more shards than the machine has spare cores still runs with its
   requested decomposition, just narrower (max_workers) *)
let take_tokens t want =
  if want <= 0 then 0
  else
    let rec go () =
      let avail = Atomic.get t.tokens in
      let n = min want avail in
      if n = 0 then 0
      else if Atomic.compare_and_set t.tokens avail (avail - n) then n
      else go ()
    in
    go ()

let return_tokens t n = if n > 0 then ignore (Atomic.fetch_and_add t.tokens n)

(* ---- job execution ---- *)

let declared_jobs (job : Job.t) =
  match job.Job.spec with
  | Job.Coverage p -> p.Job.cov_jobs
  | Job.Validate_dlx p -> p.Job.va_jobs
  | _ -> 1

let envelope_of_outcome rj (o : Service.outcome) =
  Job.envelope ~id:rj.rj_id ~kind:(Job.kind rj.rj_job)
    ~status:(Service.status_of o) ~exit_code:o.Service.exit_code
    ?error:o.Service.error ?report:o.Service.report ()

let resolve t rj status envelope =
  (* the user callback runs outside the lock (it may be a slow socket
     write) but before the job counts as resolved, so [wait] implies
     every envelope has been delivered *)
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.lock (fun () ->
          rj.rj_state <- Finished status;
          t.pending <- t.pending - 1;
          Condition.broadcast t.done_cond))
    (fun () -> rj.rj_on_done envelope)

let cancelled_envelope rj =
  Job.envelope ~id:rj.rj_id ~kind:(Job.kind rj.rj_job) ~status:Job.Cancelled
    ~exit_code:130 ~error:"cancelled before start" ()

let metrics_line () = Json.to_string ~indent:0 (Obs.snapshot ())

let execute t rj =
  let reg = Obs.registry ~label:rj.rj_id in
  let should_stop () = Atomic.get rj.rj_cancel || Atomic.get t.stop_all in
  let extra = take_tokens t (declared_jobs rj.rj_job - 1) in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        return_tokens t extra;
        Obs.release reg)
      (fun () ->
        Obs.with_registry reg (fun () ->
            Obs.set_sink (Some rj.rj_on_line);
            Fun.protect
              ~finally:(fun () -> Obs.set_sink None)
              (fun () ->
                (* stream a metrics snapshot at most twice a second
                   while the campaign reports progress, and always one
                   final snapshot before the envelope *)
                let last = ref (Unix.gettimeofday ()) in
                let on_progress _ =
                  let now = Unix.gettimeofday () in
                  if now -. !last >= 0.5 then begin
                    last := now;
                    rj.rj_on_line (metrics_line ())
                  end
                in
                let o =
                  try
                    Service.run ~cache:t.cache ~max_workers:(1 + extra)
                      ~should_stop ~on_progress rj.rj_job
                  with e ->
                    {
                      Service.exit_code = 4;
                      report = None;
                      human = "";
                      notes = [];
                      error = Some ("internal error: " ^ Printexc.to_string e);
                      interrupted = false;
                    }
                in
                rj.rj_on_line (metrics_line ());
                o)))
  in
  resolve t rj (Service.status_of outcome) (envelope_of_outcome rj outcome)

let worker_loop t =
  let rec next () =
    let job =
      Mutex.protect t.lock (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then begin
              let rj = Queue.pop t.queue in
              rj.rj_state <- Running;
              Some rj
            end
            else if t.draining then None
            else begin
              Condition.wait t.cond t.lock;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some rj ->
        (if Atomic.get rj.rj_cancel then
           resolve t rj Job.Cancelled (cancelled_envelope rj)
         else execute t rj);
        (* between jobs, never during one: sift the cached symbolic
           managers if the cache signalled pressure while we ran.
           [exchange] makes one worker claim the pass; managers busy
           under another worker's job are skipped inside. *)
        if Atomic.exchange t.reorder_pending false && not (Atomic.get t.stop_all)
        then Model_cache.reorder_cached t.cache;
        next ()
  in
  next ()

(* ---- public API ---- *)

let create ?(cache = Model_cache.shared) ?(queue_limit = 64) ?(workers = 2)
    ?domain_tokens () =
  let domain_tokens =
    match domain_tokens with
    | Some n -> max 1 n
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      cache;
      queue_limit;
      lock = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      queue = Queue.create ();
      jobs = Hashtbl.create 16;
      order = [];
      next_id = 0;
      pending = 0;
      draining = false;
      stop_all = Atomic.make false;
      tokens = Atomic.make (max 1 (domain_tokens - workers));
      reorder_pending = Atomic.make false;
      domains = [];
    }
  in
  Model_cache.set_eviction_hook cache (fun () ->
      Atomic.set t.reorder_pending true);
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ?(on_line = fun _ -> ()) ?(on_done = fun _ -> ()) job =
  Mutex.protect t.lock (fun () ->
      if t.draining then Error "pool is draining"
      else if Queue.length t.queue >= t.queue_limit then Error "queue is full"
      else begin
        let id =
          match job.Job.id with
          | Some id when not (Hashtbl.mem t.jobs id) -> id
          | _ ->
              t.next_id <- t.next_id + 1;
              let rec fresh n =
                let id = Printf.sprintf "job-%d" n in
                if Hashtbl.mem t.jobs id then fresh (n + 1) else id
              in
              fresh t.next_id
        in
        let rj =
          {
            rj_id = id;
            rj_job = job;
            rj_on_line = on_line;
            rj_on_done = on_done;
            rj_cancel = Atomic.make false;
            rj_state = Queued;
          }
        in
        Hashtbl.replace t.jobs id rj;
        t.order <- id :: t.order;
        t.pending <- t.pending + 1;
        Queue.push rj t.queue;
        Condition.signal t.cond;
        Ok id
      end)

let cancel t id =
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.jobs id) with
  | None -> false
  | Some rj -> (
      match rj.rj_state with
      | Finished _ -> false
      | Queued | Running ->
          Atomic.set rj.rj_cancel true;
          true)

let list t =
  Mutex.protect t.lock (fun () ->
      Json.Obj
        [
          ("schema", Json.String "simcov-jobs/1");
          ( "jobs",
            Json.List
              (List.rev_map
                 (fun id ->
                   let rj = Hashtbl.find t.jobs id in
                   Json.Obj
                     [
                       ("id", Json.String id);
                       ("kind", Json.String (Job.kind rj.rj_job));
                       ("state", Json.String (state_name rj.rj_state));
                     ])
                 t.order) );
        ])

let wait t =
  Mutex.protect t.lock (fun () ->
      while t.pending > 0 do
        Condition.wait t.done_cond t.lock
      done)

let drain t =
  let queued =
    Mutex.protect t.lock (fun () ->
        if t.draining then []
        else begin
          t.draining <- true;
          Atomic.set t.stop_all true;
          let qs = Queue.fold (fun acc rj -> rj :: acc) [] t.queue in
          Queue.clear t.queue;
          Condition.broadcast t.cond;
          List.rev qs
        end)
  in
  List.iter
    (fun rj -> resolve t rj Job.Cancelled (cancelled_envelope rj))
    queued;
  let domains = t.domains in
  t.domains <- [];
  List.iter Domain.join domains
