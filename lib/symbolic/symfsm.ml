open Simcov_bdd
module Budget = Simcov_util.Budget
module Obs = Simcov_obs.Obs
module Json = Simcov_util.Json

let c_iterations = Obs.counter "symfsm.iterations"
let c_images = Obs.counter "symfsm.images"
let tm_iteration = Obs.timer "symfsm.iteration"

type part = { rel : Bdd.t; supp : int list }

type iter_stat = {
  iteration : int;
  frontier_states : float;
  frontier_nodes : int;
  reached_nodes : int;
  live_nodes : int;
  time_s : float;
}

type traversal = {
  reached : Bdd.t;
  iterations : int;
  images : int;
  peak_live_nodes : int;
  total_time_s : float;
  iter_stats : iter_stat list;
  truncated : Budget.resource option;
  gc_runs : int;
}

type t = {
  man : Bdd.man;
  n_state_vars : int;
  n_input_vars : int;
  cur : int array;
  nxt : int array;
  inp : int array;
  parts : part list;
  valid : Bdd.t;
  init : Bdd.t;
  outputs : Bdd.t array;
  mutable mono : Bdd.t option;
  mutable reach : traversal option;
}

(* Variable layout: cur_i = 2i, nxt_i = 2i + 1 (interleaved), inputs
   after all state variables. *)
let layout ~n_state ~n_input =
  let cur = Array.init n_state (fun i -> 2 * i) in
  let nxt = Array.init n_state (fun i -> (2 * i) + 1) in
  let inp = Array.init n_input (fun j -> (2 * n_state) + j) in
  (cur, nxt, inp)

let bits_needed n =
  let rec go k acc = if k <= 1 then max acc 1 else go ((k + 1) / 2) (acc + 1) in
  go n 0

(* Conjunct ordering for early quantification, greedy over supports:
   repeatedly pick the part that kills the most still-pending
   quantifiable variables (variables of the image quantifier appearing
   in no other unpicked part get quantified out right after this part
   is folded in) while introducing the fewest variables not yet seen.
   O(parts^2 * support) — negligible at build time, and the resulting
   static order is reused by every image/preimage call. *)
let order_parts nvars parts ~quantified =
  let parts = Array.of_list parts in
  let n = Array.length parts in
  let chosen = Array.make n false in
  let introduced = Array.make nvars false in
  let occ = Array.make nvars 0 in
  Array.iter (fun p -> List.iter (fun v -> occ.(v) <- occ.(v) + 1) p.supp) parts;
  let result = ref [] in
  for _ = 1 to n do
    let best = ref (-1) and best_score = ref min_int in
    for i = 0 to n - 1 do
      if not chosen.(i) then begin
        let kills = ref 0 and news = ref 0 in
        List.iter
          (fun v ->
            if quantified.(v) && occ.(v) = 1 then incr kills;
            if not introduced.(v) then incr news)
          parts.(i).supp;
        let score = (2 * !kills) - !news in
        if score > !best_score then begin
          best := i;
          best_score := score
        end
      end
    done;
    let p = parts.(!best) in
    chosen.(!best) <- true;
    List.iter
      (fun v ->
        occ.(v) <- occ.(v) - 1;
        introduced.(v) <- true)
      p.supp;
    result := p :: !result
  done;
  List.rev !result

(* Build the partitioned relation from raw conjuncts: drop trivial
   ones, attach supports, order for image computation (current-state
   and input variables quantified). *)
let mk_parts man ~n_state ~n_input rels =
  let nvars = Bdd.num_vars man in
  let quantified = Array.make nvars false in
  for i = 0 to n_state - 1 do
    quantified.(2 * i) <- true
  done;
  for j = 0 to n_input - 1 do
    quantified.((2 * n_state) + j) <- true
  done;
  rels
  |> List.filter_map (fun rel ->
         if Bdd.is_true rel then None else Some { rel; supp = Bdd.support man rel })
  |> order_parts nvars ~quantified

(* Pin the long-lived structure of a symbolic FSM — relation
   conjuncts, validity, initial state, outputs — so the manager's
   garbage collector can never sweep it out from under a traversal. *)
let register_roots t =
  let p = Bdd.protect t.man in
  List.iter (fun part -> ignore (p part.rel)) t.parts;
  ignore (p t.valid);
  ignore (p t.init);
  Array.iter (fun o -> ignore (p o)) t.outputs;
  t

type reorder_mode = [ `Off | `On | `Auto ]

(* Arm dynamic variable reordering on a freshly built machine. Pairs
   (cur_i, nxt_i) are glued into sifting groups — the interleaving is
   the one structural invariant worth preserving (and it keeps the
   image's shift-down rename on the fast structural path: glued pairs
   make the substitution level-monotone under any block order).
   [`On] additionally sifts once right away; a Node_limit abort just
   keeps the order reached, the traversal still runs. *)
let setup_reorder t (mode : reorder_mode) =
  (match mode with
  | `Off -> ()
  | (`On | `Auto) as mode ->
      Bdd.set_groups t.man
        (List.init t.n_state_vars (fun i -> [ 2 * i; (2 * i) + 1 ]));
      Bdd.set_auto_reorder t.man true;
      if mode = `On then ( try Bdd.reorder t.man with Bdd.Node_limit _ -> ()));
  t

(* Re-point an existing (cached) machine at a fresh budget: the
   manager's node ceiling and the budget's node probe both follow. *)
let attach_budget t budget =
  Bdd.set_max_nodes t.man (Budget.max_nodes budget);
  Budget.set_node_probe budget (Some (fun () -> (Bdd.gc_stats t.man).Bdd.live))

(* One explicit sifting pass, best effort: an abort under the node
   ceiling leaves the manager usable at the order reached. *)
let reorder_now t = try Bdd.reorder t.man with Bdd.Node_limit _ -> ()

let man_for ~budget n =
  let man = Bdd.man ?max_nodes:(Budget.max_nodes budget) n in
  (* secondary node-budget enforcement (see budget.mli): the budget can
     now report Nodes from [exceeded]/[check] on behalf of this
     manager. Single slot, last wins — exactly right for the
     degradation ladder, where each tier abandons the previous
     manager. *)
  Budget.set_node_probe budget (Some (fun () -> (Bdd.gc_stats man).Bdd.live));
  man

let of_circuit ?(budget = Budget.unlimited) ?(reorder = `Off)
    (c : Simcov_netlist.Circuit.t) =
  let open Simcov_netlist in
  let n_state = Circuit.n_regs c and n_input = Circuit.n_inputs c in
  let cur, nxt, inp = layout ~n_state ~n_input in
  let man = man_for ~budget ((2 * n_state) + n_input) in
  (* a finished subterm is pinned while its sibling is built: a
     collection triggered mid-build must not sweep the half we hold
     (the rooting contract in bdd.mli) *)
  let rec expr_bdd (e : Expr.t) =
    match e with
    | Expr.Const b -> Bdd.of_bool man b
    | Expr.Input i -> Bdd.var man inp.(i)
    | Expr.Reg r -> Bdd.var man cur.(r)
    | Expr.Not a -> Bdd.bnot man (expr_bdd a)
    | Expr.And (a, b) -> expr_bin Bdd.band a b
    | Expr.Or (a, b) -> expr_bin Bdd.bor a b
    | Expr.Xor (a, b) -> expr_bin Bdd.bxor a b
    | Expr.Mux (s, h, l) ->
        let bs = expr_bdd s in
        Bdd.pinned man bs (fun () ->
            let bh = expr_bdd h in
            Bdd.pinned man bh (fun () -> Bdd.ite man bs bh (expr_bdd l)))
  and expr_bin op a b =
    let ba = expr_bdd a in
    Bdd.pinned man ba (fun () -> op man ba (expr_bdd b))
  in
  let valid = Bdd.protect man (expr_bdd c.Circuit.input_constraint) in
  let latch_rels =
    Array.to_list c.Circuit.regs
    |> List.mapi (fun i (r : Circuit.reg) ->
           Budget.check budget;
           let nx = Bdd.var man nxt.(i) in
           let f = expr_bdd r.Circuit.next in
           Bdd.protect man (Bdd.biff man nx f))
  in
  let parts = mk_parts man ~n_state ~n_input (valid :: latch_rels) in
  (* init and each finished output are protected as soon as they are
     built: they stay live across the remaining expr_bdd operations *)
  let init =
    Array.to_list c.Circuit.regs
    |> List.mapi (fun i (r : Circuit.reg) ->
           if r.Circuit.init then Bdd.var man cur.(i) else Bdd.nvar man cur.(i))
    |> Bdd.conj man |> Bdd.protect man
  in
  let outputs =
    Array.map
      (fun (o : Circuit.port) -> Bdd.protect man (expr_bdd o.Circuit.expr))
      c.Circuit.outputs
  in
  setup_reorder
    (register_roots
       {
         man;
         n_state_vars = n_state;
         n_input_vars = n_input;
         cur;
         nxt;
         inp;
         parts;
         valid;
         init;
         outputs;
         mono = None;
         reach = None;
       })
    reorder

let of_fsm ?(budget = Budget.unlimited) ?(reorder = `Off) (m : Simcov_fsm.Fsm.t) =
  let open Simcov_fsm in
  let n_state = bits_needed m.Fsm.n_states and n_input = bits_needed m.Fsm.n_inputs in
  let cur, nxt, inp = layout ~n_state ~n_input in
  let man = man_for ~budget ((2 * n_state) + n_input) in
  let cube vars width v =
    Bdd.conj man
      (List.init width (fun b ->
           if (v lsr b) land 1 = 1 then Bdd.var man vars.(b) else Bdd.nvar man vars.(b)))
  in
  (* per-next-state-bit transition functions: delta.(b) collects the
     (state, input) pairs whose successor has bit b set, so the
     relation factors as V(s,x) & AND_b (nxt_b <-> delta_b(s,x)) —
     one conjunct per latch instead of one monolithic disjunction *)
  let delta = Array.make n_state (Bdd.bfalse man) in
  let valid = ref (Bdd.bfalse man) in
  let n_outputs = ref 1 in
  let transitions = Fsm.transitions m in
  List.iter (fun (_, _, _, o) -> n_outputs := max !n_outputs (o + 1)) transitions;
  let out_bits = bits_needed !n_outputs in
  let outputs = Array.make out_bits (Bdd.bfalse man) in
  (* accumulators are rebuilt per transition: keep the current value of
     each pinned so a mid-build collection cannot sweep them *)
  let r_valid = Bdd.add_root man !valid in
  let r_delta = Array.map (Bdd.add_root man) delta in
  let r_out = Array.map (Bdd.add_root man) outputs in
  List.iter
    (fun (s, i, s', o) ->
      Budget.check budget;
      let sc = cube cur n_state s in
      (* [sc] stays live across the input-cube build: pin it *)
      let si = Bdd.pinned man sc (fun () -> Bdd.band man sc (cube inp n_input i)) in
      valid := Bdd.bor man !valid si;
      Bdd.set_root man r_valid !valid;
      for b = 0 to n_state - 1 do
        if (s' lsr b) land 1 = 1 then begin
          delta.(b) <- Bdd.bor man delta.(b) si;
          Bdd.set_root man r_delta.(b) delta.(b)
        end
      done;
      for b = 0 to out_bits - 1 do
        if (o lsr b) land 1 = 1 then begin
          outputs.(b) <- Bdd.bor man outputs.(b) si;
          Bdd.set_root man r_out.(b) outputs.(b)
        end
      done)
    transitions;
  let latch_rels =
    List.init n_state (fun b ->
        Bdd.protect man (Bdd.biff man (Bdd.var man nxt.(b)) delta.(b)))
  in
  let parts = mk_parts man ~n_state ~n_input (!valid :: latch_rels) in
  (* the initial-state cube is built while valid/outputs are still
     temp-rooted and protected immediately; after the temp roots are
     dropped no operation runs until register_roots re-pins
     everything *)
  let init = Bdd.protect man (cube cur n_state m.Fsm.reset) in
  Array.iter (Bdd.remove_root man) r_delta;
  Array.iter (Bdd.remove_root man) r_out;
  Bdd.remove_root man r_valid;
  setup_reorder
    (register_roots
       {
         man;
         n_state_vars = n_state;
         n_input_vars = n_input;
         cur;
         nxt;
         inp;
         parts;
         valid = !valid;
         init;
         outputs;
         mono = None;
         reach = None;
       })
    reorder

let cur_and_inp t = Array.to_list t.cur @ Array.to_list t.inp
let part_rels t = List.map (fun p -> p.rel) t.parts

(* Monolithic transition relation — the fallback representation and
   the oracle the partitioned path is tested against. Built on first
   demand (it is the single most expensive BDD in the system) and
   cached. *)
let trans t =
  match t.mono with
  | Some r -> r
  | None ->
      let r = Bdd.protect t.man (Bdd.conj t.man (part_rels t)) in
      t.mono <- Some r;
      r

let constrain_trans t pred =
  List.fold_left (fun acc p -> Bdd.band t.man acc p.rel) pred t.parts

let shift_down t v = if v < 2 * t.n_state_vars then v - 1 else v
let shift_up t v = if v < 2 * t.n_state_vars then v + 1 else v

let image ?(budget = Budget.unlimited) t set =
  Budget.check budget;
  let img = Bdd.and_exists_list t.man (cur_and_inp t) (set :: part_rels t) in
  (* img is over nxt vars; shift them down to cur *)
  Bdd.rename t.man (shift_down t) img

let image_mono ?(budget = Budget.unlimited) t set =
  Budget.check budget;
  let img = Bdd.and_exists t.man (cur_and_inp t) set (trans t) in
  Bdd.rename t.man (shift_down t) img

let preimage ?(budget = Budget.unlimited) t set =
  Budget.check budget;
  let set' = Bdd.rename t.man (shift_up t) set in
  Bdd.and_exists_list t.man
    (Array.to_list t.nxt @ Array.to_list t.inp)
    (set' :: part_rels t)

let preimage_mono ?(budget = Budget.unlimited) t set =
  Budget.check budget;
  let set' = Bdd.rename t.man (shift_up t) set in
  Bdd.and_exists t.man (Array.to_list t.nxt @ Array.to_list t.inp) set' (trans t)

(* Count assignments of [f] over exactly [width] variables, given that
   support f is contained in those variables: total count divided by
   the free dimensions. *)
let count_over t f ~width =
  let total_vars = Bdd.num_vars t.man in
  Bdd.sat_count t.man ~nvars:total_vars f /. Float.ldexp 1.0 (total_vars - width)

let count_states t set = count_over t set ~width:t.n_state_vars

let traverse ?(partitioned = true) ?(frontier = true) ?(budget = Budget.unlimited) t
    =
  let img set = if partitioned then image t set else image_mono t set in
  let t0 = Unix.gettimeofday () in
  let gc0 = (Bdd.gc_stats t.man).Bdd.runs in
  let stats = ref [] in
  let images = ref 0 in
  let record ~iteration ~front ~reached ~dt =
    let stat =
      {
        iteration;
        frontier_states = count_states t front;
        frontier_nodes = Bdd.size front;
        reached_nodes = Bdd.size reached;
        live_nodes = Bdd.node_count t.man;
        time_s = dt;
      }
    in
    Obs.incr c_iterations;
    Obs.observe tm_iteration dt;
    Obs.event "symfsm.iteration" ~fields:(fun () ->
        [
          ("iteration", Json.Int stat.iteration);
          ("frontier_states", Json.Float stat.frontier_states);
          ("frontier_nodes", Json.Int stat.frontier_nodes);
          ("reached_nodes", Json.Int stat.reached_nodes);
          ("live_nodes", Json.Int stat.live_nodes);
          ("dur_s", Json.Float dt);
        ]);
    stats := stat :: !stats
  in
  let finish ?truncated reached iterations =
    {
      reached;
      iterations;
      images = !images;
      peak_live_nodes = Bdd.peak_node_count t.man;
      total_time_s = Unix.gettimeofday () -. t0;
      iter_stats = List.rev !stats;
      truncated;
      gc_runs = (Bdd.gc_stats t.man).Bdd.runs - gc0;
    }
  in
  (* the reached set and frontier must survive a mid-traversal sweep *)
  let r_reached = Bdd.add_root t.man t.init in
  let r_front = Bdd.add_root t.man t.init in
  Fun.protect
    ~finally:(fun () ->
      Bdd.remove_root t.man r_reached;
      Bdd.remove_root t.man r_front)
    (fun () ->
      if frontier then begin
        (* BFS imaging only the new frontier: states discovered in the
           previous iteration, not the whole reached set. The whole
           iteration body — image plus the band/bnot/bor combining
           steps — is guarded: a node-ceiling hit anywhere in it
           finishes with the sound under-approximation reached so
           far. *)
        let rec go reached front n =
          match Budget.step budget with
          | exception Budget.Budget_exceeded r -> finish ~truncated:r reached (n - 1)
          | () -> (
              let ti = Unix.gettimeofday () in
              match
                let im = img front in
                incr images;
                Obs.incr c_images;
                (* [im] stays live across the bnot below: pin it *)
                let fresh =
                  Bdd.pinned t.man im (fun () ->
                      Bdd.band t.man im (Bdd.bnot t.man reached))
                in
                if Bdd.is_false fresh then None
                else begin
                  Bdd.set_root t.man r_front fresh;
                  let reached' = Bdd.bor t.man reached fresh in
                  Bdd.set_root t.man r_reached reached';
                  Some (reached', fresh)
                end
              with
              | exception Bdd.Node_limit _ ->
                  finish ~truncated:Budget.Nodes reached (n - 1)
              | step ->
                  record ~iteration:n ~front ~reached ~dt:(Unix.gettimeofday () -. ti);
                  (match step with
                  | None -> finish reached n
                  | Some (reached', fresh) -> go reached' fresh (n + 1)))
        in
        go t.init t.init 1
      end
      else begin
        let rec go set n =
          match Budget.step budget with
          | exception Budget.Budget_exceeded r -> finish ~truncated:r set (n - 1)
          | () -> (
              let ti = Unix.gettimeofday () in
              match
                let im = img set in
                incr images;
                Obs.incr c_images;
                let next = Bdd.bor t.man set im in
                Bdd.set_root t.man r_reached next;
                Bdd.set_root t.man r_front next;
                next
              with
              | exception Bdd.Node_limit _ ->
                  finish ~truncated:Budget.Nodes set (n - 1)
              | next ->
                  record ~iteration:n ~front:set ~reached:set
                    ~dt:(Unix.gettimeofday () -. ti);
                  if Bdd.equal next set then finish set n else go next (n + 1))
        in
        go t.init 1
      end)

let reachable_stats ?budget t =
  match t.reach with
  | Some tr -> tr
  | None ->
      let tr = traverse ?budget t in
      (* only a complete fixpoint is worth memoizing: a later call with
         a fresh budget can still reach it *)
      if tr.truncated = None then begin
        ignore (Bdd.protect t.man tr.reached);
        t.reach <- Some tr
      end;
      tr

let reachable t =
  let tr = reachable_stats t in
  (tr.reached, tr.iterations)

let count_reachable t = count_states t (fst (reachable t))

let count_transitions t =
  let r, _ = reachable t in
  count_over t (Bdd.band t.man r t.valid) ~width:(t.n_state_vars + t.n_input_vars)

let count_valid_inputs t =
  let r, _ = reachable t in
  let v = Bdd.and_exists t.man (Array.to_list t.cur) r t.valid in
  count_over t v ~width:t.n_input_vars

let state_space_size t = Float.ldexp 1.0 t.n_state_vars
let input_space_size t = Float.ldexp 1.0 t.n_input_vars

let pick_state t set =
  if Bdd.is_false set then None
  else begin
    let assigns = Bdd.any_sat t.man set in
    let state = Array.make t.n_state_vars false in
    List.iter
      (fun (v, b) ->
        if v < 2 * t.n_state_vars && v mod 2 = 0 then state.(v / 2) <- b)
      assigns;
    Some state
  end

let state_cube t state =
  Bdd.conj t.man
    (List.init t.n_state_vars (fun i ->
         if state.(i) then Bdd.var t.man t.cur.(i) else Bdd.nvar t.man t.cur.(i)))
