(** Transition-tour generation over the implicit (BDD) representation.

    The paper generates its tour "by traversal of this implicit
    representation, along with consideration of input don't-cares"
    (Section 6.5) — no explicit state enumeration. This module does
    the same: it tracks the set of covered (state, input) pairs as a
    BDD and repeatedly walks (concretely, one cycle at a time) to the
    nearest state owning an uncovered valid transition, found through
    backward symbolic breadth-first layers.

    The resulting tours are not optimal (neither was the paper's:
    1069 M traversals over 123 M transitions); they exist to exercise
    models whose state spaces are far beyond explicit methods. Use
    {!Simcov_testgen.Tour} when the model fits in arrays. *)

open Simcov_netlist
module Budget = Simcov_util.Budget

type progress = {
  steps : int;  (** inputs applied so far *)
  covered : float;  (** transitions covered *)
  total : float;  (** reachable valid transitions *)
}

type result = {
  word : bool array list;  (** input vectors, in order, from the initial state *)
  complete : bool;  (** all reachable valid transitions covered *)
  progress : progress;
  truncated_by : Budget.resource option;
      (** [Some r] when the tour (or the reachability pass feeding it)
          was cut short by resource [r]; the word and coverage figures
          then describe a sound partial tour. [None] otherwise. *)
}

val generate : ?max_steps:int -> ?budget:Budget.t -> Circuit.t -> result
(** Greedy symbolic tour from the initial state. Stops when complete,
    after [max_steps] (default 100_000) inputs, or when [budget] runs
    out — budget exhaustion (deadline, steps, or the manager node
    ceiling) never raises; it yields the partial word generated so far
    with [truncated_by] set and [complete = false]. If the budgeted
    reachability pass is itself truncated, the tour targets the
    under-approximate reached set and is likewise marked truncated.
    The word is replayable with
    {!Simcov_netlist.Circuit.simulate}. *)

val coverage_of_word :
  ?budget:Budget.t -> Circuit.t -> bool array list -> float * float
(** [(covered, total)] transitions for an arbitrary input word (each
    vector must be valid when applied).
    @raise Budget.Budget_exceeded when the deadline passes mid-replay. *)
