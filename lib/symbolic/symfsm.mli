(** Symbolic (BDD-based) finite state machines.

    The implicit transition-relation representation the paper builds
    inside SIS (Section 7.2): current-state variables, next-state
    variables and input variables, with the transition relation
    T(s, x, s') = AND_i (s'_i <-> delta_i(s, x)), an input-validity
    constraint V(s, x), and an initial-state predicate. Current and
    next state variables are interleaved in the variable order, the
    standard heuristic for relation BDDs.

    The relation is kept {e partitioned}: one conjunct per latch plus
    the validity constraint, each with its support, ordered at build
    time by a greedy clustering heuristic. Image and preimage fold the
    conjuncts with early quantification (Burch–Clarke–Long style)
    instead of ever building the monolithic product; the monolithic
    relation remains available through {!trans} as a fallback and as
    the test oracle for the partitioned path.

    Used to reproduce the paper's counts: reachable states (13,720 of
    2^22 there), valid input combinations (8228 of 2^25), and the
    number of distinct transitions (123 million). *)

open Simcov_bdd
module Budget = Simcov_util.Budget

type part = {
  rel : Bdd.t;  (** one conjunct of the transition relation *)
  supp : int list;  (** its support, ascending *)
}

type iter_stat = {
  iteration : int;  (** 1-based breadth-first layer *)
  frontier_states : float;  (** states imaged this iteration *)
  frontier_nodes : int;  (** BDD nodes of the imaged set *)
  reached_nodes : int;  (** BDD nodes of the reached set before the step *)
  live_nodes : int;  (** manager unique-table size after the step *)
  time_s : float;  (** wall time of this image step *)
}

type traversal = {
  reached : Bdd.t;
      (** the least fixpoint — or, when [truncated] is set, the sound
          under-approximation reached before resources ran out — over
          [cur] vars *)
  iterations : int;  (** sequential depth + 1 (completed iterations) *)
  images : int;  (** image computations performed *)
  peak_live_nodes : int;  (** manager live-node high-water mark *)
  total_time_s : float;
  iter_stats : iter_stat list;  (** per-iteration, in order *)
  truncated : Budget.resource option;
      (** [None] = exact fixpoint; [Some r] = traversal stopped early
          because resource [r] (time, steps, or BDD nodes) ran out *)
  gc_runs : int;  (** BDD garbage collections during this traversal *)
}

type t = {
  man : Bdd.man;
  n_state_vars : int;
  n_input_vars : int;
  cur : int array;  (** current-state BDD variables *)
  nxt : int array;  (** next-state BDD variables *)
  inp : int array;  (** input BDD variables *)
  parts : part list;  (** partitioned T(cur, inp, nxt) · V, in fold order *)
  valid : Bdd.t;  (** V(cur, inp) *)
  init : Bdd.t;  (** I(cur) *)
  outputs : Bdd.t array;  (** O_k(cur, inp) per output bit *)
  mutable mono : Bdd.t option;  (** cached monolithic relation *)
  mutable reach : traversal option;  (** cached default traversal *)
}

type reorder_mode = [ `Off | `On | `Auto ]
(** Dynamic-variable-reordering policy for a machine's BDD manager.
    [`Off] (the default) keeps the build-time interleaved order —
    bit-for-bit the historical behavior. [`Auto] arms growth-ratio
    triggered sifting with (cur, nxt) pairs glued as groups. [`On]
    additionally runs one sifting pass as soon as the machine is
    built. *)

val of_circuit :
  ?budget:Budget.t -> ?reorder:reorder_mode -> Simcov_netlist.Circuit.t -> t
(** Compile a netlist: one state variable per register, one input
    variable per primary input; one relation conjunct per register.
    [budget] caps the build: its node allowance becomes the manager's
    live-node ceiling and its deadline is checked between conjuncts
    (@raise Budget.Budget_exceeded / @raise Bdd.Node_limit when the
    relation itself does not fit). The long-lived structure (relation
    conjuncts, validity, init, outputs) is registered as GC roots —
    which is also what makes [reorder] (default [`Off]) safe: a
    sifting pass sweeps from exactly those roots. *)

val of_fsm : ?budget:Budget.t -> ?reorder:reorder_mode -> Simcov_fsm.Fsm.t -> t
(** Encode an explicit machine in binary (states and inputs packed
    little-endian; unreachable encodings excluded by validity); one
    relation conjunct per state bit. Budget and reorder semantics as
    in {!of_circuit}, budget checked per transition. *)

val attach_budget : t -> Budget.t -> unit
(** Re-point a (possibly cached) machine at a fresh budget: the
    budget's node allowance becomes the manager's ceiling and the
    budget's node probe reads this manager — what a daemon does when
    it serves a cache-hit model under a new job's budget. *)

val reorder_now : t -> unit
(** One explicit sifting pass on the machine's manager, best effort:
    a {!Bdd.Node_limit} abort is swallowed and the order reached is
    kept. The daemon calls this between jobs. *)

(** {1 The transition relation} *)

val trans : t -> Bdd.t
(** The monolithic conjunction of all partition conjuncts — built on
    first use and cached. This is the representation the partitioned
    image/preimage path is validated against, and the fallback for
    consumers that need the whole relation. *)

val constrain_trans : t -> Bdd.t -> Bdd.t
(** [constrain_trans t pred] is [pred ∧ T] computed by folding the
    partition into [pred], without ever building the monolithic
    relation — cheap when [pred] fixes most state variables. *)

(** {1 Traversal} *)

val image : ?budget:Budget.t -> t -> Bdd.t -> Bdd.t
(** Forward image over valid transitions: the set (over [cur] vars) of
    successors of the given set (over [cur] vars). Partitioned, with
    early quantification. [budget]'s deadline is checked on entry
    (@raise Budget.Budget_exceeded). *)

val preimage : ?budget:Budget.t -> t -> Bdd.t -> Bdd.t
(** States with a valid transition into the given set. Partitioned. *)

val image_mono : ?budget:Budget.t -> t -> Bdd.t -> Bdd.t
(** [image] against the monolithic relation (forces {!trans}); kept as
    the oracle and fallback. *)

val preimage_mono : ?budget:Budget.t -> t -> Bdd.t -> Bdd.t

val traverse :
  ?partitioned:bool -> ?frontier:bool -> ?budget:Budget.t -> t -> traversal
(** Least fixpoint of the image from [init], with per-iteration
    statistics. [partitioned] selects the partitioned vs. monolithic
    image; [frontier] selects frontier-based BFS (image only the
    states discovered in the previous iteration) vs. imaging the full
    reached set each round. Both default to [true] — the fast path.
    All four combinations compute the same fixpoint in the same number
    of iterations; the flags exist for benchmarks and as oracles.

    Never raises on exhaustion: one budget step is consumed per
    iteration, and when the deadline, the step budget, or the
    manager's node ceiling runs out the traversal returns the reached
    set so far with [truncated = Some resource] — a sound
    under-approximation of the fixpoint. The reached set and frontier
    are pinned as GC roots for the duration. *)

val reachable : t -> Bdd.t * int
(** Least fixpoint of [image] from [init]; also returns the number of
    iterations (the sequential depth + 1). Memoized: repeated calls
    (e.g. from the counting helpers) reuse the first traversal. *)

val reachable_stats : ?budget:Budget.t -> t -> traversal
(** Like {!reachable} with the full per-iteration statistics. Only an
    exact (non-truncated) traversal is memoized — a truncated one is
    returned as-is so a later call under a fresh budget can still
    complete the fixpoint. *)

(** {1 Counting} *)

val count_states : t -> Bdd.t -> float
(** Number of states in a set over [cur] vars. *)

val count_reachable : t -> float

val count_transitions : t -> float
(** Number of distinct (reachable state, valid input) pairs — for a
    deterministic machine, the number of transitions a tour must
    cover. *)

val count_valid_inputs : t -> float
(** Number of input combinations valid in at least one reachable state
    (the paper's "only 8228 of 2^25 are valid"). *)

val state_space_size : t -> float
(** [2^n_state_vars]. *)

val input_space_size : t -> float

(** {1 Concretization} *)

val pick_state : t -> Bdd.t -> bool array option
(** Some concrete state in the set (arbitrary but deterministic). *)

val state_cube : t -> bool array -> Bdd.t
(** Characteristic function (over [cur] vars) of one concrete state. *)
