open Simcov_bdd
open Simcov_netlist
module Budget = Simcov_util.Budget
module Obs = Simcov_obs.Obs

let c_steps = Obs.counter "symtour.steps"
let tm_generate = Obs.timer "symtour.generate"

type progress = { steps : int; covered : float; total : float }

type result = {
  word : bool array list;
  complete : bool;
  progress : progress;
  truncated_by : Budget.resource option;
}

let count_pairs (sym : Symfsm.t) f =
  let total_vars = Bdd.num_vars sym.Symfsm.man in
  Bdd.sat_count sym.Symfsm.man ~nvars:total_vars f
  /. Float.pow 2.0 (Float.of_int (total_vars - sym.Symfsm.n_state_vars - sym.Symfsm.n_input_vars))

let input_cube (sym : Symfsm.t) iv =
  Bdd.conj sym.Symfsm.man
    (List.init sym.Symfsm.n_input_vars (fun j ->
         if iv.(j) then Bdd.var sym.Symfsm.man sym.Symfsm.inp.(j)
         else Bdd.nvar sym.Symfsm.man sym.Symfsm.inp.(j)))

(* extract a concrete input vector from a partial satisfying
   assignment; unassigned variables are input don't-cares and default
   to false *)
let inputs_of_assigns (sym : Symfsm.t) assigns =
  let iv = Array.make sym.Symfsm.n_input_vars false in
  List.iter
    (fun (v, b) ->
      if v >= 2 * sym.Symfsm.n_state_vars then iv.(v - (2 * sym.Symfsm.n_state_vars)) <- b)
    assigns;
  iv

let member (sym : Symfsm.t) set state =
  Bdd.eval sym.Symfsm.man set (fun v ->
      if v < 2 * sym.Symfsm.n_state_vars && v mod 2 = 0 then state.(v / 2) else false)

let generate ?(max_steps = 100_000) ?(budget = Budget.unlimited) (circuit : Circuit.t) =
  Obs.span tm_generate @@ fun () ->
  let sym = Symfsm.of_circuit ~budget circuit in
  let man = sym.Symfsm.man in
  let tr = Symfsm.reachable_stats ~budget sym in
  let truncated = ref tr.Symfsm.truncated in
  let target =
    Bdd.protect man (Bdd.band man tr.Symfsm.reached sym.Symfsm.valid)
  in
  let total = count_pairs sym target in
  let covered = ref (Bdd.bfalse man) in
  let r_covered = Bdd.add_root man !covered in
  let state = ref (Circuit.initial_state circuit) in
  let word = ref [] in
  let steps = ref 0 in
  let apply iv =
    let sc = Symfsm.state_cube sym !state in
    (* [sc] stays live across the input-cube build: pin it *)
    let pair = Bdd.pinned man sc (fun () -> Bdd.band man sc (input_cube sym iv)) in
    covered := Bdd.bor man !covered pair;
    Bdd.set_root man r_covered !covered;
    let state', _ = Circuit.step circuit !state iv in
    state := state';
    word := iv :: !word;
    incr steps;
    Obs.incr c_steps
  in
  let uncovered () = Bdd.band man target (Bdd.bnot man !covered) in
  (* an uncovered transition out of the current state, if any *)
  let local_input () =
    let u0 = uncovered () in
    (* [u0] stays live across the state-cube build: pin it *)
    let u =
      Bdd.pinned man u0 (fun () -> Bdd.band man u0 (Symfsm.state_cube sym !state))
    in
    if Bdd.is_false u then None else Some (inputs_of_assigns sym (Bdd.any_sat man u))
  in
  (* walk to the nearest state owning an uncovered transition via
     backward BFS layers; everything held across the layer-building
     preimages is pinned so a mid-walk GC cannot unshare it *)
  let walk_to_goal () =
    let goal =
      Bdd.and_exists man (Array.to_list sym.Symfsm.inp) (uncovered ()) (Bdd.btrue man)
    in
    if Bdd.is_false goal then false
    else begin
      let pins = ref [] in
      let pin b =
        pins := Bdd.add_root man b :: !pins;
        b
      in
      Fun.protect
        ~finally:(fun () -> List.iter (Bdd.remove_root man) !pins)
      @@ fun () ->
      ignore (pin goal);
      (* build layers until the current state is included *)
      let rec build layers frontier union =
        if member sym frontier !state then Some (frontier :: layers)
        else begin
          let pre = pin (Symfsm.preimage sym frontier) in
          let union' = pin (Bdd.bor man union pre) in
          if Bdd.equal union' union then None (* unreachable from here *)
          else
            build (frontier :: layers)
              (pin (Bdd.band man pre (Bdd.bnot man union)))
              union'
        end
      in
      match build [] goal goal with
      | None -> false
      | Some (_current_layer :: deeper) ->
          (* deeper = [next_layer; ...; goal]; step through them *)
          List.iter
            (fun layer ->
              let layer' =
                Bdd.rename man
                  (fun v -> if v < 2 * sym.Symfsm.n_state_vars then v + 1 else v)
                  layer
              in
              (* [layer'] stays live across the state-cube build *)
              let choices =
                Bdd.pinned man layer' (fun () ->
                    Symfsm.constrain_trans sym
                      (Bdd.band man (Symfsm.state_cube sym !state) layer'))
              in
              (* trans includes validity; choices is nonempty by
                 construction of the layers *)
              apply (inputs_of_assigns sym (Bdd.any_sat man choices)))
            deeper;
          true
      | Some [] -> assert false
    end
  in
  let running = ref true in
  (try
     while !running && !steps < max_steps do
       Budget.check budget;
       match local_input () with
       | Some iv -> apply iv
       | None -> if not (walk_to_goal ()) then running := false
     done
   with
  | Budget.Budget_exceeded r -> truncated := Some r
  | Bdd.Node_limit _ -> truncated := Some Budget.Nodes);
  let complete =
    !truncated = None
    && (try Bdd.is_false (uncovered ()) with Bdd.Node_limit _ -> false)
  in
  let covered_n = count_pairs sym !covered in
  Bdd.remove_root man r_covered;
  {
    word = List.rev !word;
    complete;
    progress = { steps = !steps; covered = covered_n; total };
    truncated_by = !truncated;
  }

let coverage_of_word ?(budget = Budget.unlimited) (circuit : Circuit.t) word =
  let sym = Symfsm.of_circuit ~budget circuit in
  let man = sym.Symfsm.man in
  let reach, _ = Symfsm.reachable sym in
  let target = Bdd.protect man (Bdd.band man reach sym.Symfsm.valid) in
  let covered = ref (Bdd.bfalse man) in
  let r_covered = Bdd.add_root man !covered in
  let state = ref (Circuit.initial_state circuit) in
  List.iter
    (fun iv ->
      Budget.check budget;
      let sc = Symfsm.state_cube sym !state in
      let pair = Bdd.pinned man sc (fun () -> Bdd.band man sc (input_cube sym iv)) in
      covered := Bdd.bor man !covered pair;
      Bdd.set_root man r_covered !covered;
      let state', _ = Circuit.step circuit !state iv in
      state := state')
    word;
  let result = (count_pairs sym !covered, count_pairs sym target) in
  Bdd.remove_root man r_covered;
  result
