open Simcov_bdd
open Simcov_netlist

type progress = { steps : int; covered : float; total : float }
type result = { word : bool array list; complete : bool; progress : progress }

let count_pairs (sym : Symfsm.t) f =
  let total_vars = Bdd.num_vars sym.Symfsm.man in
  Bdd.sat_count sym.Symfsm.man ~nvars:total_vars f
  /. Float.pow 2.0 (Float.of_int (total_vars - sym.Symfsm.n_state_vars - sym.Symfsm.n_input_vars))

let input_cube (sym : Symfsm.t) iv =
  Bdd.conj sym.Symfsm.man
    (List.init sym.Symfsm.n_input_vars (fun j ->
         if iv.(j) then Bdd.var sym.Symfsm.man sym.Symfsm.inp.(j)
         else Bdd.nvar sym.Symfsm.man sym.Symfsm.inp.(j)))

(* extract a concrete input vector from a partial satisfying
   assignment; unassigned variables are input don't-cares and default
   to false *)
let inputs_of_assigns (sym : Symfsm.t) assigns =
  let iv = Array.make sym.Symfsm.n_input_vars false in
  List.iter
    (fun (v, b) ->
      if v >= 2 * sym.Symfsm.n_state_vars then iv.(v - (2 * sym.Symfsm.n_state_vars)) <- b)
    assigns;
  iv

let member (sym : Symfsm.t) set state =
  Bdd.eval sym.Symfsm.man set (fun v ->
      if v < 2 * sym.Symfsm.n_state_vars && v mod 2 = 0 then state.(v / 2) else false)

let generate ?(max_steps = 100_000) (circuit : Circuit.t) =
  let sym = Symfsm.of_circuit circuit in
  let man = sym.Symfsm.man in
  let reach, _ = Symfsm.reachable sym in
  let target = Bdd.band man reach sym.Symfsm.valid in
  let total = count_pairs sym target in
  let covered = ref (Bdd.bfalse man) in
  let state = ref (Circuit.initial_state circuit) in
  let word = ref [] in
  let steps = ref 0 in
  let apply iv =
    covered :=
      Bdd.bor man !covered (Bdd.band man (Symfsm.state_cube sym !state) (input_cube sym iv));
    let state', _ = Circuit.step circuit !state iv in
    state := state';
    word := iv :: !word;
    incr steps
  in
  let uncovered () = Bdd.band man target (Bdd.bnot man !covered) in
  (* an uncovered transition out of the current state, if any *)
  let local_input () =
    let u = Bdd.band man (uncovered ()) (Symfsm.state_cube sym !state) in
    if Bdd.is_false u then None else Some (inputs_of_assigns sym (Bdd.any_sat man u))
  in
  (* walk to the nearest state owning an uncovered transition via
     backward BFS layers *)
  let walk_to_goal () =
    let goal =
      Bdd.and_exists man (Array.to_list sym.Symfsm.inp) (uncovered ()) (Bdd.btrue man)
    in
    if Bdd.is_false goal then false
    else begin
      (* build layers until the current state is included *)
      let rec build layers frontier union =
        if member sym frontier !state then Some (frontier :: layers)
        else begin
          let pre = Symfsm.preimage sym frontier in
          let union' = Bdd.bor man union pre in
          if Bdd.equal union' union then None (* unreachable from here *)
          else build (frontier :: layers) (Bdd.band man pre (Bdd.bnot man union)) union'
        end
      in
      match build [] goal goal with
      | None -> false
      | Some (_current_layer :: deeper) ->
          (* deeper = [next_layer; ...; goal]; step through them *)
          List.iter
            (fun layer ->
              let layer' =
                Bdd.rename man
                  (fun v -> if v < 2 * sym.Symfsm.n_state_vars then v + 1 else v)
                  layer
              in
              let choices =
                Symfsm.constrain_trans sym
                  (Bdd.band man (Symfsm.state_cube sym !state) layer')
              in
              (* trans includes validity; choices is nonempty by
                 construction of the layers *)
              apply (inputs_of_assigns sym (Bdd.any_sat man choices)))
            deeper;
          true
      | Some [] -> assert false
    end
  in
  let running = ref true in
  while !running && !steps < max_steps do
    match local_input () with
    | Some iv -> apply iv
    | None -> if not (walk_to_goal ()) then running := false
  done;
  let covered_n = count_pairs sym !covered in
  {
    word = List.rev !word;
    complete = Bdd.is_false (uncovered ());
    progress = { steps = !steps; covered = covered_n; total };
  }

let coverage_of_word (circuit : Circuit.t) word =
  let sym = Symfsm.of_circuit circuit in
  let man = sym.Symfsm.man in
  let reach, _ = Symfsm.reachable sym in
  let target = Bdd.band man reach sym.Symfsm.valid in
  let covered = ref (Bdd.bfalse man) in
  let state = ref (Circuit.initial_state circuit) in
  List.iter
    (fun iv ->
      covered :=
        Bdd.bor man !covered
          (Bdd.band man (Symfsm.state_cube sym !state) (input_cube sym iv));
      let state', _ = Circuit.step circuit !state iv in
      state := state')
    word;
  (count_pairs sym !covered, count_pairs sym target)
