open Simcov_bdd
open Simcov_netlist

type counterexample = {
  state_a : (string * bool) list;
  state_b : (string * bool) list;
  inputs : (string * bool) list;
  output : string;
}

type result = Equivalent of { reachable_pairs : float } | Different of counterexample

(* Variable layout for the product machine: the two circuits' state
   variables are interleaved (cur/nxt pairs) first — A's registers,
   then B's — followed by the shared inputs. *)
let check (a : Circuit.t) (b : Circuit.t) =
  if Circuit.n_inputs a <> Circuit.n_inputs b then
    invalid_arg "Equiv.check: input counts differ";
  if Circuit.n_outputs a <> Circuit.n_outputs b then
    invalid_arg "Equiv.check: output counts differ";
  let na = Circuit.n_regs a and nb = Circuit.n_regs b in
  let n_state = na + nb in
  let ni = Circuit.n_inputs a in
  let man = Bdd.man ((2 * n_state) + ni) in
  let cur k = 2 * k and nxt k = (2 * k) + 1 in
  let inp j = (2 * n_state) + j in
  let expr_bdd ~offset (e : Expr.t) =
    let rec go = function
      | Expr.Const c -> Bdd.of_bool man c
      | Expr.Input i -> Bdd.var man (inp i)
      | Expr.Reg r -> Bdd.var man (cur (offset + r))
      | Expr.Not x -> Bdd.bnot man (go x)
      | Expr.And (x, y) -> Bdd.band man (go x) (go y)
      | Expr.Or (x, y) -> Bdd.bor man (go x) (go y)
      | Expr.Xor (x, y) -> Bdd.bxor man (go x) (go y)
      | Expr.Mux (s, h, l) -> Bdd.ite man (go s) (go h) (go l)
    in
    go e
  in
  let trans_of (c : Circuit.t) ~offset =
    Array.to_list c.Circuit.regs
    |> List.mapi (fun k (r : Circuit.reg) ->
           Bdd.biff man (Bdd.var man (nxt (offset + k))) (expr_bdd ~offset r.Circuit.next))
    |> Bdd.conj man
  in
  let init_of (c : Circuit.t) ~offset =
    Array.to_list c.Circuit.regs
    |> List.mapi (fun k (r : Circuit.reg) ->
           if r.Circuit.init then Bdd.var man (cur (offset + k))
           else Bdd.nvar man (cur (offset + k)))
    |> Bdd.conj man
  in
  let valid =
    Bdd.band man
      (expr_bdd ~offset:0 a.Circuit.input_constraint)
      (expr_bdd ~offset:na b.Circuit.input_constraint)
  in
  let trans = Bdd.band man valid (Bdd.band man (trans_of a ~offset:0) (trans_of b ~offset:na)) in
  let init = Bdd.band man (init_of a ~offset:0) (init_of b ~offset:na) in
  let cur_vars = List.init n_state cur in
  let inp_vars = List.init ni inp in
  let image set =
    let img = Bdd.and_exists man (cur_vars @ inp_vars) set trans in
    Bdd.rename man (fun v -> if v < 2 * n_state then v - 1 else v) img
  in
  (* frontier-based BFS: image only the newly discovered pairs *)
  let rec fix reached front =
    let fresh = Bdd.band man (image front) (Bdd.bnot man reached) in
    if Bdd.is_false fresh then reached else fix (Bdd.bor man reached fresh) fresh
  in
  let reach = fix init init in
  (* the miter: some output pair differs under a valid input *)
  let diff_of k =
    Bdd.bxor man
      (expr_bdd ~offset:0 a.Circuit.outputs.(k).Circuit.expr)
      (expr_bdd ~offset:na b.Circuit.outputs.(k).Circuit.expr)
  in
  let rec find_diff k =
    if k >= Circuit.n_outputs a then None
    else begin
      let bad = Bdd.band man reach (Bdd.band man valid (diff_of k)) in
      if Bdd.is_false bad then find_diff (k + 1) else Some (k, bad)
    end
  in
  match find_diff 0 with
  | None ->
      let total_vars = Bdd.num_vars man in
      let count =
        Bdd.sat_count man ~nvars:total_vars reach
        /. Float.pow 2.0 (Float.of_int (total_vars - n_state))
      in
      Equivalent { reachable_pairs = count }
  | Some (k, bad) ->
      let assigns = Bdd.any_sat man bad in
      let value_of v = List.assoc_opt v assigns = Some true in
      let state_a =
        List.init na (fun r -> (a.Circuit.regs.(r).Circuit.name, value_of (cur r)))
      in
      let state_b =
        List.init nb (fun r -> (b.Circuit.regs.(r).Circuit.name, value_of (cur (na + r))))
      in
      let inputs =
        List.init ni (fun j -> (a.Circuit.input_names.(j), value_of (inp j)))
      in
      Different
        { state_a; state_b; inputs; output = a.Circuit.outputs.(k).Circuit.port_name }

let equivalent a b = match check a b with Equivalent _ -> true | Different _ -> false
