type edge = { id : int; src : int; dst : int; label : int; cost : int }

type t = {
  n : int;
  mutable edges : edge array; (* dense prefix of length m *)
  mutable m : int;
  out : int list array; (* edge ids, most recent first *)
  indeg : int array;
}

let create n =
  { n; edges = [||]; m = 0; out = Array.make n []; indeg = Array.make n 0 }

let n_vertices t = t.n
let n_edges t = t.m

let grow t =
  let cap = Array.length t.edges in
  if t.m >= cap then begin
    let dummy = { id = -1; src = 0; dst = 0; label = 0; cost = 0 } in
    let edges = Array.make (max 8 (2 * cap)) dummy in
    Array.blit t.edges 0 edges 0 t.m;
    t.edges <- edges
  end

let add_edge t ~src ~dst ~label ~cost =
  assert (src >= 0 && src < t.n && dst >= 0 && dst < t.n && cost >= 0);
  grow t;
  let id = t.m in
  t.edges.(id) <- { id; src; dst; label; cost };
  t.m <- id + 1;
  t.out.(src) <- id :: t.out.(src);
  t.indeg.(dst) <- t.indeg.(dst) + 1;
  id

let edge t id =
  assert (id >= 0 && id < t.m);
  t.edges.(id)

let out_edges t v = List.rev_map (fun id -> t.edges.(id)) t.out.(v)

let in_degree t v = t.indeg.(v)
let out_degree t v = List.length t.out.(v)

let iter_edges f t =
  for i = 0 to t.m - 1 do
    f t.edges.(i)
  done

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun e -> acc := f e !acc) t;
  !acc

let reverse t =
  let r = create t.n in
  iter_edges
    (fun e -> ignore (add_edge r ~src:e.dst ~dst:e.src ~label:e.label ~cost:e.cost))
    t;
  r

let pp ppf t =
  Format.fprintf ppf "digraph(%d vertices, %d edges)" t.n t.m;
  iter_edges
    (fun e -> Format.fprintf ppf "@\n  %d -%d-> %d (cost %d)" e.src e.label e.dst e.cost)
    t
