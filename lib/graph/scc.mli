(** Strongly connected components (Tarjan's algorithm, iterative). *)

val components : Digraph.t -> int array * int
(** [components g] is [(comp, k)] where [comp.(v)] is the component index
    of vertex [v] (components are numbered [0 .. k - 1] in reverse
    topological order: an edge between components goes from a
    higher-numbered to a lower-numbered one... see note) and [k] is the
    number of components. Tarjan emits components in reverse topological
    order, so [comp.(u) >= comp.(v)] never holds for a cross edge
    [u -> v] pointing forward; concretely, for any edge [u -> v] with
    [comp.(u) <> comp.(v)], [comp.(u) > comp.(v)]. *)

val condensation : Digraph.t -> int array * int * (int * int) list
(** [condensation g] is [(comp, k, edges)]: the {!components} result
    plus the deduplicated cross-component edge list of the condensation
    DAG, sorted. Each [(a, b)] with [a <> b] means some edge of [g]
    leaves component [a] for component [b] (and, [g]'s condensation
    being a DAG, [a > b] per the Tarjan numbering above). [k = 1] with
    [edges = []] iff the graph is strongly connected. *)

val is_strongly_connected : Digraph.t -> bool
(** True when the whole vertex set forms a single component. For graphs
    with isolated vertices this is false unless [n <= 1]. *)

val restrict_strongly_connected : Digraph.t -> root:int -> int array option
(** [restrict_strongly_connected g ~root] returns [Some comp_members]
    (sorted vertex ids) of the component containing [root] if that
    component contains every edge endpoint reachable from [root];
    [None] when vertices reachable from [root] escape its component
    (i.e. the reachable subgraph is not strongly connected). *)
