(* Iterative Tarjan: an explicit stack of (vertex, remaining out-edges)
   frames avoids stack overflow on the million-edge transition graphs
   produced by processor test models. *)

let components g =
  let n = Digraph.n_vertices g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let frames = ref [ (root, ref (Digraph.out_edges g root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, rest) :: tl -> (
          match !rest with
          | e :: es ->
              rest := es;
              let w = e.Digraph.dst in
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, ref (Digraph.out_edges g w)) :: !frames
              end
              else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              frames := tl;
              (match tl with
              | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: ws ->
                      stack := ws;
                      on_stack.(w) <- false;
                      comp.(w) <- !next_comp;
                      if w = v then continue := false
                done;
                incr next_comp
              end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !next_comp)

let condensation g =
  let comp, k = components g in
  let edges = Hashtbl.create 16 in
  Digraph.iter_edges
    (fun e ->
      let a = comp.(e.Digraph.src) and b = comp.(e.Digraph.dst) in
      if a <> b then Hashtbl.replace edges (a, b) ())
    g;
  let cross = Hashtbl.fold (fun ab () acc -> ab :: acc) edges [] in
  (comp, k, List.sort compare cross)

let is_strongly_connected g =
  let n = Digraph.n_vertices g in
  if n <= 1 then true
  else
    let _, k = components g in
    k = 1

let restrict_strongly_connected g ~root =
  let comp, _ = components g in
  let c = comp.(root) in
  (* BFS from root; fail if we reach a vertex outside component c. *)
  let n = Digraph.n_vertices g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add root queue;
  seen.(root) <- true;
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun e ->
        let w = e.Digraph.dst in
        if comp.(w) <> c then ok := false
        else if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      (Digraph.out_edges g v)
  done;
  if not !ok then None
  else begin
    let members = ref [] in
    for v = n - 1 downto 0 do
      if seen.(v) then members := v :: !members
    done;
    Some (Array.of_list !members)
  end
