(** Test-set generation from test models (Section 6.5).

    A {e transition tour} is an input word, applied from the reset
    state, that traverses every reachable valid transition at least
    once. The minimum-length tour is obtained by reduction to the
    directed Chinese postman problem, "which can be solved in
    polynomial time" (the paper cites Aho et al.'s rural-postman
    formulation); a greedy nearest-first heuristic and a random walk
    are provided as the baselines of the tour-length ablation. *)

open Simcov_fsm

type result = {
  word : int list;  (** input word from reset *)
  length : int;
  n_transitions : int;  (** transitions that had to be covered *)
  extra : int;  (** traversals beyond one per transition *)
}

val transition_tour : Fsm.t -> result option
(** Minimum-length transition tour (closed: returns to reset). [None]
    when the reachable transition graph is not strongly connected, in
    which case no closed tour exists — see {!transition_cover}. *)

val transition_tour_checked : Fsm.t -> (result, Precheck.refusal) Result.t
(** {!transition_tour} behind the {!Precheck.check} gate: [Error]
    carries the SA6xx refusal (disconnected — SA610 — or non-minimal —
    SA620, under which Theorem 1's completeness claim for the tour is
    void) instead of silently producing a tour that proves nothing. *)

val greedy_transition_tour : Fsm.t -> result option
(** Nearest-uncovered-transition heuristic; same coverage, usually
    longer. *)

val state_tour : Fsm.t -> result option
(** Word visiting every reachable state at least once (state coverage
    in the sense of Iwashita et al., the weaker measure the paper
    contrasts with). [n_transitions] reports the state count. *)

val transition_cover : Fsm.t -> result
(** Fallback for non-strongly-connected models: restart from reset
    whenever no uncovered transition is reachable, concatenating
    segments. The result's [word] is only meaningful for machines with
    a reset input — segments are separated implicitly by returning to
    reset, so [word] is a list of segments flattened; use
    {!transition_cover_segments} when the segments matter. *)

val transition_cover_segments : Fsm.t -> int list list
(** The individual reset-to-end segments of {!transition_cover}. *)

val shortest_input_path : Fsm.t -> src:int -> dst:int -> int list option
(** Shortest input word driving the machine from [src] to [dst]
    (empty when equal; [None] when unreachable). *)

val random_word : Simcov_util.Rng.t -> Fsm.t -> length:int -> int list
(** Random valid walk from reset (uniform over valid inputs per
    state). Stops early only if a state has no valid input. *)

val word_is_tour : Fsm.t -> int list -> bool
(** Check that a word is a transition tour (coverage, not minimality).
    A word containing an input that is invalid in the state where it
    is applied is rejected outright — even if the prefix before the
    invalid input already covers every transition — because such a
    word cannot be replayed on the implementation. *)
