open Simcov_fsm

(* Does [word] separate states p and q (differing output at some step,
   or a validity mismatch)? Steps invalid in both truncate the word. *)
let separates (m : Fsm.t) word p q =
  let rec go p q = function
    | [] -> false
    | i :: rest -> (
        let vp = m.Fsm.valid p i and vq = m.Fsm.valid q i in
        if vp <> vq then true
        else if not vp then false
        else if m.Fsm.output p i <> m.Fsm.output q i then true
        else go (m.Fsm.next p i) (m.Fsm.next q i) rest)
  in
  p <> q && go p q word

let characterization_set ?(scope = `Reachable) (m : Fsm.t) =
  let seen = Fsm.reachable m in
  let in_scope q = match scope with `Reachable -> seen.(q) | `All -> true in
  let pairs = ref [] in
  for p = 0 to m.Fsm.n_states - 1 do
    for q = p + 1 to m.Fsm.n_states - 1 do
      if in_scope p && in_scope q then
        match Fsm.distinguish m p q with
        | Some w -> pairs := (p, q, w) :: !pairs
        | None -> () (* equivalent states: no word separates them *)
    done
  done;
  (* greedy cover: repeatedly take the word separating the most
     still-uncovered pairs *)
  let w_set = ref [] in
  let remaining = ref !pairs in
  while !remaining <> [] do
    let candidates = List.map (fun (_, _, w) -> w) !remaining in
    let best =
      List.fold_left
        (fun (bw, bc) w ->
          let c =
            List.length (List.filter (fun (p, q, _) -> separates m w p q) !remaining)
          in
          if c > bc then (w, c) else (bw, bc))
        ([], 0) candidates
    in
    let w = fst best in
    w_set := w :: !w_set;
    remaining := List.filter (fun (p, q, _) -> not (separates m w p q)) !remaining
  done;
  List.rev !w_set

let transition_cover (m : Fsm.t) =
  let covers =
    List.filter_map
      (fun (s, i, _, _) ->
        match Tour.shortest_input_path m ~src:m.Fsm.reset ~dst:s with
        | Some access -> Some (access @ [ i ])
        | None -> None)
      (Fsm.transitions m)
  in
  [] :: covers

let suite ?scope (m : Fsm.t) =
  let w = match characterization_set ?scope m with [] -> [ [] ] | ws -> ws in
  let p = transition_cover m in
  List.concat_map (fun prefix -> List.map (fun suffix -> prefix @ suffix) w) p

let suite_checked ?scope (m : Fsm.t) =
  match Precheck.minimal ?scope m with
  | Error r -> Error r
  | Ok () -> Ok (suite ?scope m)

(* Sigma^(<= extra): all input words up to the given length, including
   the empty word *)
let middle_words (m : Fsm.t) ~extra =
  let inputs = List.init m.Fsm.n_inputs Fun.id in
  let rec grow k acc frontier =
    if k = 0 then acc
    else
      let next = List.concat_map (fun w -> List.map (fun i -> w @ [ i ]) inputs) frontier in
      grow (k - 1) (acc @ next) next
  in
  grow extra [ [] ] [ [] ]

let suite_extra ?scope ~extra (m : Fsm.t) =
  let w = match characterization_set ?scope m with [] -> [ [] ] | ws -> ws in
  let p = transition_cover m in
  let mid = middle_words m ~extra in
  List.concat_map
    (fun prefix ->
      List.concat_map (fun inner -> List.map (fun suffix -> prefix @ inner @ suffix) w) mid)
    p

let total_length words = List.fold_left (fun acc w -> acc + List.length w) 0 words

(* run a word from reset on golden and mutant; the word may become
   invalid mid-way on either side (validity mismatch = detection;
   invalid on both = truncation) *)
let word_detects (m : Fsm.t) mutant word =
  let rec go sg sm = function
    | [] -> false
    | i :: rest -> (
        let vg = m.Fsm.valid sg i and vm = mutant.Fsm.valid sm i in
        if vg <> vm then true
        else if not vg then false
        else if m.Fsm.output sg i <> mutant.Fsm.output sm i then true
        else go (m.Fsm.next sg i) (mutant.Fsm.next sm i) rest)
  in
  go m.Fsm.reset mutant.Fsm.reset word

let detects m fault words =
  let mutant = Simcov_coverage.Fault.apply m fault in
  List.exists (word_detects m mutant) words

let campaign m faults words =
  let total = List.length faults in
  let effective = ref 0 and excited = ref 0 and detected = ref 0 in
  let missed = ref [] in
  List.iter
    (fun f ->
      if Simcov_coverage.Fault.is_effective m f then begin
        incr effective;
        let verdicts =
          List.map (fun w -> Simcov_coverage.Detect.run_verdict m f w) words
        in
        let ex =
          List.exists
            (fun (v : Simcov_coverage.Detect.verdict) -> v.Simcov_coverage.Detect.excited)
            verdicts
        in
        let de =
          List.exists
            (fun (v : Simcov_coverage.Detect.verdict) -> v.Simcov_coverage.Detect.detected)
            verdicts
        in
        if ex then incr excited;
        if de then incr detected else if ex then missed := f :: !missed
      end)
    faults;
  {
    Simcov_coverage.Detect.backend = "fsm-fault/wmethod";
    total;
    effective = !effective;
    excited = !excited;
    detected = !detected;
    missed = List.rev !missed;
    skipped = 0;
    truncated = None;
    shard_failures = [];
  }
