open Simcov_fsm

(* BFS over (position of s, surviving other-state positions): an input
   extends the word if valid from s's position; other states survive
   only while they remain valid and output-identical. Exponential in
   the worst case, bounded by [max_len] and a visited set. *)
let uio ?(scope = `Reachable) ?(max_len = 8) (m : Fsm.t) s =
  let seen = Fsm.reachable m in
  if not seen.(s) then None
  else begin
    let in_scope q = match scope with `Reachable -> seen.(q) | `All -> true in
    let others = ref [] in
    for q = m.Fsm.n_states - 1 downto 0 do
      if in_scope q && q <> s then others := q :: !others
    done;
    if !others = [] then Some []
    else begin
      let visited = Hashtbl.create 1024 in
      let queue = Queue.create () in
      (* (depth, pos of s, sorted surviving positions, reversed word) *)
      Queue.add (0, s, !others, []) queue;
      Hashtbl.add visited (s, !others) ();
      let result = ref None in
      while !result = None && not (Queue.is_empty queue) do
        let depth, pos, survivors, word = Queue.pop queue in
        if depth < max_len then
          List.iter
            (fun i ->
              if !result = None && m.Fsm.valid pos i then begin
                let o = m.Fsm.output pos i in
                let pos' = m.Fsm.next pos i in
                let survivors' =
                  List.filter_map
                    (fun q ->
                      if m.Fsm.valid q i && m.Fsm.output q i = o then
                        Some (m.Fsm.next q i)
                      else None (* separated by output or validity *))
                    survivors
                  |> List.sort_uniq Int.compare
                in
                (* a survivor landing on s's own position can never be
                   separated afterwards; keep it (it will block) *)
                let word' = i :: word in
                if survivors' = [] then result := Some (List.rev word')
                else if not (Hashtbl.mem visited (pos', survivors')) then begin
                  Hashtbl.add visited (pos', survivors') ();
                  Queue.add (depth + 1, pos', survivors', word') queue
                end
              end)
            (Fsm.valid_inputs m pos)
      done;
      !result
    end
  end

let all_uios ?scope ?max_len (m : Fsm.t) =
  let seen = Fsm.reachable m in
  Array.init m.Fsm.n_states (fun s -> if seen.(s) then uio ?scope ?max_len m s else None)

let checking_sequence ?scope ?max_len (m : Fsm.t) =
  let uios = all_uios ?scope ?max_len m in
  let transitions = Fsm.transitions m in
  let missing =
    List.exists (fun (_, _, s', _) -> uios.(s') = None) transitions
  in
  if missing then None
  else begin
    let word = ref [] in
    let current = ref m.Fsm.reset in
    let append i =
      word := i :: !word;
      current := m.Fsm.next !current i
    in
    let ok = ref true in
    List.iter
      (fun (s, i, s', _) ->
        if !ok then begin
          (match Tour.shortest_input_path m ~src:!current ~dst:s with
          | Some path -> List.iter append path
          | None -> ok := false);
          if !ok then begin
            append i;
            assert (!current = s');
            List.iter append (Option.get uios.(s'))
          end
        end)
      transitions;
    if !ok then Some (List.rev !word) else None
  end

let checking_sequence_checked ?scope ?max_len (m : Fsm.t) =
  match Precheck.check ?scope m with
  | Error r -> Error r
  | Ok () -> (
      match checking_sequence ?scope ?max_len m with
      | Some w -> Ok w
      | None ->
          Error
            {
              Precheck.code = "SA631";
              reason =
                Printf.sprintf
                  "some state's UIO exceeds the %d-step search bound: raise \
                   max_len"
                  (Option.value ~default:8 max_len);
            })

let length_overhead m =
  match (Tour.transition_tour m, checking_sequence m) with
  | Some t, Some cs -> Some (t.Tour.length, List.length cs)
  | _ -> None
