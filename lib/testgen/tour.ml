open Simcov_fsm
open Simcov_graph

type result = { word : int list; length : int; n_transitions : int; extra : int }

let of_cpp_tour g (t : Cpp.tour) =
  let word = List.map (fun id -> (Digraph.edge g id).Digraph.label) t.Cpp.edges in
  {
    word;
    length = t.Cpp.length;
    n_transitions = Digraph.n_edges g;
    extra = t.Cpp.length - Digraph.n_edges g;
  }

let transition_tour m =
  let g = Fsm.transition_graph m in
  Option.map (of_cpp_tour g) (Cpp.solve g ~start:m.Fsm.reset)

let transition_tour_checked m =
  match Precheck.check m with
  | Error r -> Error r
  | Ok () -> (
      match transition_tour m with
      | Some t -> Ok t
      | None ->
          (* unreachable once Precheck.connected passed; defensive *)
          Error
            {
              Precheck.code = "SA610";
              reason = "no closed transition tour exists";
            })

let greedy_transition_tour m =
  let g = Fsm.transition_graph m in
  Option.map (of_cpp_tour g) (Cpp.greedy g ~start:m.Fsm.reset)

(* BFS over states (not transitions) from [from]; returns the input
   word to the nearest state satisfying [target]. *)
let bfs_to (m : Fsm.t) ~from ~target =
  let visited = Array.make m.Fsm.n_states false in
  let parent = Array.make m.Fsm.n_states (-1, -1) in
  let queue = Queue.create () in
  visited.(from) <- true;
  Queue.add from queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    if target s then found := Some s
    else
      List.iter
        (fun i ->
          let s' = m.Fsm.next s i in
          if not visited.(s') then begin
            visited.(s') <- true;
            parent.(s') <- (s, i);
            Queue.add s' queue
          end)
        (Fsm.valid_inputs m s)
  done;
  match !found with
  | None -> None
  | Some s ->
      let rec unwind s acc =
        if s = from then acc
        else
          let p, i = parent.(s) in
          unwind p (i :: acc)
      in
      Some (s, unwind s [])

let state_tour (m : Fsm.t) =
  let seen = Fsm.reachable m in
  let n_states = Fsm.n_reachable m in
  let visited = Array.make m.Fsm.n_states false in
  visited.(m.Fsm.reset) <- true;
  let n_visited = ref 1 in
  let word = ref [] in
  let current = ref m.Fsm.reset in
  let ok = ref true in
  while !ok && !n_visited < n_states do
    match bfs_to m ~from:!current ~target:(fun s -> seen.(s) && not visited.(s)) with
    | None -> ok := false
    | Some (s, path) ->
        List.iter
          (fun i ->
            word := i :: !word;
            current := m.Fsm.next !current i;
            if not visited.(!current) then begin
              visited.(!current) <- true;
              incr n_visited
            end)
          path;
        ignore s
  done;
  if not !ok then None
  else
    let word = List.rev !word in
    Some { word; length = List.length word; n_transitions = n_states; extra = 0 }

let transition_cover_segments (m : Fsm.t) =
  let covered = Hashtbl.create 1024 in
  let total = Fsm.n_transitions m in
  let segments = ref [] in
  let segment = ref [] in
  let current = ref m.Fsm.reset in
  let flush () =
    if !segment <> [] then begin
      segments := List.rev !segment :: !segments;
      segment := [];
      current := m.Fsm.reset
    end
  in
  while Hashtbl.length covered < total do
    (* prefer an uncovered transition out of the current state *)
    let local =
      List.find_opt (fun i -> not (Hashtbl.mem covered (!current, i))) (Fsm.valid_inputs m !current)
    in
    match local with
    | Some i ->
        Hashtbl.replace covered (!current, i) ();
        segment := i :: !segment;
        current := m.Fsm.next !current i
    | None -> (
        match
          bfs_to m ~from:!current ~target:(fun s ->
              List.exists (fun i -> not (Hashtbl.mem covered (s, i))) (Fsm.valid_inputs m s))
        with
        | Some (_, path) ->
            List.iter
              (fun i ->
                Hashtbl.replace covered (!current, i) ();
                segment := i :: !segment;
                current := m.Fsm.next !current i)
              path
        | None -> flush () (* restart from reset *))
  done;
  flush ();
  List.rev !segments

let transition_cover m =
  let segments = transition_cover_segments m in
  let word = List.concat segments in
  {
    word;
    length = List.length word;
    n_transitions = Fsm.n_transitions m;
    extra = List.length word - Fsm.n_transitions m;
  }

let shortest_input_path m ~src ~dst =
  if src = dst then Some []
  else Option.map snd (bfs_to m ~from:src ~target:(fun s -> s = dst))

let random_word rng (m : Fsm.t) ~length =
  let rec go s n acc =
    if n = 0 then List.rev acc
    else
      match Fsm.valid_inputs m s with
      | [] -> List.rev acc
      | inputs ->
          let arr = Array.of_list inputs in
          let i = Simcov_util.Rng.pick rng arr in
          go (m.Fsm.next s i) (n - 1) (i :: acc)
  in
  go m.Fsm.reset length []

let word_is_tour (m : Fsm.t) word =
  let covered = Hashtbl.create 1024 in
  (* an invalid input anywhere rejects the whole word — silently
     dropping the suffix would accept a non-replayable "tour" whose
     covering prefix happens to be complete *)
  let rec go s = function
    | [] -> true
    | i :: rest ->
        m.Fsm.valid s i
        && begin
             Hashtbl.replace covered (s, i) ();
             go (m.Fsm.next s i) rest
           end
  in
  go m.Fsm.reset word && Hashtbl.length covered = Fsm.n_transitions m
