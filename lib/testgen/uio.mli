(** UIO sequences and checking sequences.

    The paper's completeness argument is motivated by protocol
    conformance testing (Dahbura-Sabnani-Uyar; Aho-Dahbura-Lee-Uyar's
    rural-Chinese-postman optimization, both cited in Section 3). A
    {e UIO sequence} for state [s] is an input word whose output from
    [s] differs from its output from every other state — a per-state
    identity check. A {e checking sequence} verifies every transition
    by driving to its source, applying it, and confirming the
    destination with the destination's UIO.

    Checking sequences expose transfer errors even on machines that
    are not ∀k-distinguishable (where plain transition tours can miss,
    Figure 2) — at the price of longer tests. They are the natural
    baseline for the paper's Requirements: either make the test model
    ∀k-distinguishable and use a plain tour (Theorem 1), or pay for
    per-transition verification. *)

open Simcov_fsm

val uio : ?scope:[ `Reachable | `All ] -> ?max_len:int -> Fsm.t -> int -> int list option
(** [uio m s] is a shortest input word separating [s] from every other
    state by outputs (validity differences count as separations), or
    [None] if none exists within [max_len] (default 8) — e.g. when
    another state is equivalent to [s].

    [scope] selects the states [s] must be told apart from:
    [`Reachable] (default) or [`All]. Conformance testing against
    implementations whose faults may land in states that are
    unreachable in the correct machine (the 3' of Figure 2) needs
    [`All].

    Only words valid from [s] are considered; a word that is invalid
    from some other state at a step where the outputs so far agree
    separates that state (the simulator would observe the rejection). *)

val all_uios :
  ?scope:[ `Reachable | `All ] -> ?max_len:int -> Fsm.t -> int list option array
(** UIO for every state ([None] entries for unreachable states or
    states without a UIO within the bound). *)

val checking_sequence :
  ?scope:[ `Reachable | `All ] -> ?max_len:int -> Fsm.t -> int list option
(** A single input word from reset that, for every reachable
    transition (s, i): drives the machine to [s] (shortest path),
    applies [i], and applies the UIO of the destination. [None] when
    some reachable state lacks a UIO within the bound.

    No attempt is made at rural-postman optimality; the greedy
    concatenation is within a small factor on the models here and
    keeps the construction transparent. *)

val checking_sequence_checked :
  ?scope:[ `Reachable | `All ] ->
  ?max_len:int ->
  Fsm.t ->
  (int list, Precheck.refusal) result
(** {!checking_sequence} behind the {!Precheck.check} gate. A
    disconnected machine (SA610) has no single-word checking sequence;
    a non-minimal one (SA620, in the chosen [scope]) has states with
    no UIO at all, so the search would exhaust [max_len] for nothing —
    both are refused with the diagnostic naming the witness. When the
    preconditions hold but some UIO still exceeds [max_len], the
    refusal code is ["SA631"] (the distinguishing words are longer
    than the bound). *)

val length_overhead : Fsm.t -> (int * int) option
(** [(tour_length, checking_length)] for models where both exist —
    the cost of transfer-error certainty without ∀k assumptions. *)
