(** Machine-class preconditions for the test generators.

    Every generator in this library assumes facts about the machine
    that, when false, make its output garbage rather than an error:
    the Chinese-postman tour needs strong connectivity (otherwise no
    closed tour exists), and the W-method / UIO suites need a minimal
    machine (equivalent states silently shrink the characterization
    set, so the resulting suite is not complete for the advertised
    fault domain). This module names those refusals with the stable
    SA6xx codes of the fsm-lint catalog (see [Simcov_analysis.Diag]),
    without depending on the analysis library.

    The [*_checked] generator variants ([Tour.transition_tour_checked],
    [Wmethod.suite_checked], [Uio.checking_sequence_checked]) run these
    checks first and return [Error refusal] instead of a bogus
    suite. *)

open Simcov_fsm

type refusal = {
  code : string;  (** stable diagnostic code: ["SA610"] or ["SA620"] *)
  reason : string;  (** human sentence with the concrete witness *)
}

val pp : Format.formatter -> refusal -> unit
(** ["SA610: ..."] on one line. *)

val connected : Fsm.t -> (unit, refusal) result
(** [Error {code = "SA610"; _}] when the reachable transition graph is
    not strongly connected (no closed transition tour exists). *)

val minimal : ?scope:[ `Reachable | `All ] -> Fsm.t -> (unit, refusal) result
(** [Error {code = "SA620"; _}] naming an equivalent state pair.
    [`Reachable] (default) checks the reachable sub-machine (partition
    refinement); [`All] checks every pair — the scope the W-method
    uses when implementation faults can land in spec-unreachable
    states. *)

val check : ?scope:[ `Reachable | `All ] -> Fsm.t -> (unit, refusal) result
(** {!connected} then {!minimal}: the full precondition gate. *)
