(** The W-method (Chow): characterization sets and P·W test suites.

    The classical alternative to tour-based testing: a
    {e characterization set} W distinguishes every pair of
    inequivalent states; the test suite applies every word of the
    {e transition cover} P followed by every word of W, resetting
    between tests. Complete for implementations with no more states
    than the specification — without the paper's ∀k assumptions, but
    at a multiplicative |P|·|W| cost and requiring a reliable reset.

    Included as the second conformance-testing baseline next to
    {!Uio}: the tour-length ablation compares one certified tour
    against these suites. *)

open Simcov_fsm

val characterization_set :
  ?scope:[ `Reachable | `All ] -> Fsm.t -> int list list
(** A set W of input words such that every pair of distinct,
    inequivalent states is separated by some word (by outputs or
    validity). Greedy cover over pairwise shortest distinguishing
    words; empty list for the 1-state machine. Pairs of equivalent
    states are ignored (no word can separate them). [scope] defaults
    to [`Reachable]; use [`All] when implementation faults can land in
    specification states that are unreachable in the correct machine
    (Figure 2's 3'). *)

val transition_cover : Fsm.t -> int list list
(** P: the empty word plus, for every reachable transition (s, i), a
    shortest access word to [s] extended with [i]. *)

val suite : ?scope:[ `Reachable | `All ] -> Fsm.t -> int list list
(** The W-method test suite P·W (with W = {ε} fallback when the
    characterization set is empty). Each word runs from reset. *)

val suite_checked :
  ?scope:[ `Reachable | `All ] -> Fsm.t -> (int list list, Precheck.refusal) result
(** {!suite} behind {!Precheck.minimal}: on a non-minimal machine the
    characterization set silently ignores equivalent pairs, so the
    P·W suite is {e not} complete for the advertised fault domain —
    refuse with the SA620 diagnostic (naming the pair) instead. *)

val suite_extra : ?scope:[ `Reachable | `All ] -> extra:int -> Fsm.t -> int list list
(** Chow's extension for implementations with up to [extra] more
    states than the specification: P·Σ^(≤extra)·W. The suite grows by
    a factor of |Σ|^extra — the classical cost of not knowing the
    implementation's state count, and another reason the paper wants
    requirements under which a plain tour suffices. *)

val total_length : int list list -> int
(** Input symbols summed over the suite — the cost measure. *)

val detects : Fsm.t -> Simcov_coverage.Fault.t -> int list list -> bool
(** A fault is detected when any word of the suite (run from reset)
    exposes it. *)

val campaign :
  Fsm.t -> Simcov_coverage.Fault.t list -> int list list -> Simcov_coverage.Detect.report
(** Campaign over a word suite (detection = any word detects;
    excitation = any word excites). *)
