open Simcov_fsm
module Scc = Simcov_graph.Scc
module Digraph = Simcov_graph.Digraph

type refusal = { code : string; reason : string }

let pp fmt r = Format.fprintf fmt "%s: %s" r.code r.reason

let connected (m : Fsm.t) =
  let seen = Fsm.reachable m in
  (* dense renumbering: unreachable states must not count as
     components of their own *)
  let idx = Array.make m.Fsm.n_states (-1) in
  let n = ref 0 in
  for s = 0 to m.Fsm.n_states - 1 do
    if seen.(s) then begin
      idx.(s) <- !n;
      incr n
    end
  done;
  let g = Digraph.create !n in
  for s = 0 to m.Fsm.n_states - 1 do
    if seen.(s) then
      List.iter
        (fun i ->
          let d = m.Fsm.next s i in
          if d >= 0 && d < m.Fsm.n_states && seen.(d) then
            ignore (Digraph.add_edge g ~src:idx.(s) ~dst:idx.(d) ~label:i ~cost:1))
        (Fsm.valid_inputs m s)
  done;
  if Scc.is_strongly_connected g then Ok ()
  else
    let _, k = Scc.components g in
    Error
      {
        code = "SA610";
        reason =
          Printf.sprintf
            "reachable transition graph has %d strongly connected components; no \
             closed transition tour exists"
            k;
      }

let minimal ?(scope = `Reachable) (m : Fsm.t) =
  let pair s t =
    Error
      {
        code = "SA620";
        reason =
          Printf.sprintf
            "states %s and %s are equivalent: the machine is not minimal, so \
             characterization-set-based suites are not complete"
            (m.Fsm.state_name s) (m.Fsm.state_name t);
      }
  in
  match scope with
  | `Reachable ->
      let _, classes = Fsm.minimize m in
      let rep = Hashtbl.create 16 in
      let result = ref (Ok ()) in
      Array.iteri
        (fun s c ->
          if !result = Ok () && c >= 0 then
            match Hashtbl.find_opt rep c with
            | Some t -> result := pair t s
            | None -> Hashtbl.add rep c s)
        classes;
      !result
  | `All ->
      let result = ref (Ok ()) in
      for s = 0 to m.Fsm.n_states - 1 do
        for t = s + 1 to m.Fsm.n_states - 1 do
          if !result = Ok () && Fsm.distinguish m s t = None then result := pair s t
        done
      done;
      !result

let check ?scope m = Result.bind (connected m) (fun () -> minimal ?scope m)
