(** Finite-state Mealy machines with partial input alphabets.

    This is the representation used for test models (Section 4.1 of the
    paper): deterministic Mealy machines whose input alphabet may be
    state-dependent ("invalid instructions and relationships between
    datapath outputs" make only 8228 of 2^25 input combinations valid
    in the paper's DLX model, Section 7.2).

    States and inputs are dense integers. The machine is represented
    behaviorally (functions), so fault-injected mutants (see
    {!Simcov_coverage}) can wrap a machine without copying its
    transition table. *)

type t = {
  n_states : int;
  n_inputs : int;
  reset : int;
  valid : int -> int -> bool;  (** [valid s i]: may input [i] occur in state [s]? *)
  next : int -> int -> int;  (** transition function, defined when valid *)
  output : int -> int -> int;  (** output function, defined when valid *)
  state_name : int -> string;
  input_name : int -> string;
}

val make :
  ?reset:int ->
  ?valid:(int -> int -> bool) ->
  ?state_name:(int -> string) ->
  ?input_name:(int -> string) ->
  n_states:int ->
  n_inputs:int ->
  next:(int -> int -> int) ->
  output:(int -> int -> int) ->
  unit ->
  t
(** Build a machine; by default every input is valid everywhere and the
    reset state is 0. *)

val of_table : ?reset:int -> (int * int * int * int) list -> t
(** [of_table rows] builds a machine from [(state, input, next, output)]
    rows; state/input counts are inferred, and only listed pairs are
    valid. Duplicate [(state, input)] rows are a programming error. *)

val tabulate : t -> t
(** Materialize the behavioral functions into arrays (O(1) stepping);
    semantics unchanged. *)

type tables = {
  tab_states : int;
  tab_inputs : int;
  tab_reset : int;
  tab_valid : bool array;  (** indexed [state * tab_inputs + input] *)
  tab_next : int array;
  tab_output : int array;
}

val tables : t -> tables
(** The raw transition tables behind {!tabulate}, for engines (e.g.
    bit-parallel fault simulation) that index them directly instead of
    going through closures. Entries at invalid [(state, input)] pairs
    are unspecified in [tab_next]/[tab_output]. *)

(** {1 Execution} *)

val step : t -> int -> int -> int * int
(** [step m s i] is [(next, output)]. @raise Invalid_argument if [i] is
    not valid in [s]. *)

val run : t -> int list -> (int * int * int * int) list
(** [run m word] executes from reset, returning the executed transitions
    [(state, input, next, output)] in order.
    @raise Invalid_argument on the first invalid input. *)

val output_word : t -> int list -> int list
(** Outputs only. *)

val final_state : t -> int list -> int

(** {1 Structure} *)

val valid_inputs : t -> int -> int list
val reachable : t -> bool array
(** Characteristic vector of states reachable from reset. *)

val n_reachable : t -> int

val transitions : t -> (int * int * int * int) list
(** All [(state, input, next, output)] with [state] reachable and
    [input] valid, sorted by state then input. *)

val n_transitions : t -> int

val transition_graph : t -> Simcov_graph.Digraph.t
(** One vertex per state, one edge per reachable valid transition,
    labeled with the input symbol and unit cost. This is the graph
    tours are computed on. *)

(** {1 Comparison} *)

val equivalent : t -> t -> (int list, string) result
(** Product-machine equivalence from the reset states. [Ok ce] with a
    nonempty [ce] means the machines disagree and [ce] is a shortest
    input word exposing it (differing output, or validity mismatch);
    [Ok \[\]] means equivalent; [Error msg] when alphabets differ. *)

val distinguish : t -> int -> int -> int list option
(** Shortest input word telling two states of the same machine apart
    ([None] if the states are equivalent). A word distinguishes if some
    prefix step produces differing outputs, or an input is valid in one
    state and not the other. *)

(** {1 ∀k-distinguishability (Definition 5)} *)

val forall_k_distinguishable : t -> k:int -> int -> int -> bool
(** [forall_k_distinguishable m ~k s1 s2]: does {e every} input sequence
    of length [k] (valid from both states; validity mismatch counts as
    an observable difference) distinguish [s1] from [s2]? *)

val forall_k_matrix : t -> k:int -> bool array array
(** The relation over all state pairs, [result.(s1).(s2)]. Quadratic in
    states — intended for test models, not full designs. *)

val min_forall_k : ?bound:int -> t -> int option
(** Smallest [k] such that every pair of distinct reachable states is
    ∀k-distinguishable, searching up to [bound] (default 16). [None] if
    no such [k] within the bound (e.g. two equivalent states exist —
    then no [k] works at all). *)

(** {1 Minimization} *)

val minimize : t -> t * int array
(** Partition-refinement minimization (Moore splitting on Mealy
    outputs, restricted to reachable states). Returns the quotient
    machine and the state -> class map (unreachable states map to
    [-1]). Two states sharing a class are equivalent. *)

(** {1 Generators (for tests and benchmarks)} *)

val random_connected :
  Simcov_util.Rng.t -> n_states:int -> n_inputs:int -> n_outputs:int -> t
(** Random total machine whose transition graph is strongly connected
    (a random cycle through all states is seeded first, then the
    remaining transitions are drawn uniformly). *)

val pp : Format.formatter -> t -> unit
