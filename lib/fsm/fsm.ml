type t = {
  n_states : int;
  n_inputs : int;
  reset : int;
  valid : int -> int -> bool;
  next : int -> int -> int;
  output : int -> int -> int;
  state_name : int -> string;
  input_name : int -> string;
}

let default_state_name s = "s" ^ string_of_int s
let default_input_name i = "i" ^ string_of_int i

let make ?(reset = 0) ?(valid = fun _ _ -> true) ?(state_name = default_state_name)
    ?(input_name = default_input_name) ~n_states ~n_inputs ~next ~output () =
  assert (n_states > 0 && n_inputs > 0 && reset >= 0 && reset < n_states);
  { n_states; n_inputs; reset; valid; next; output; state_name; input_name }

let of_table ?(reset = 0) rows =
  let n_states =
    List.fold_left (fun acc (s, _, n, _) -> max acc (max s n + 1)) 1 rows
  in
  let n_inputs = List.fold_left (fun acc (_, i, _, _) -> max acc (i + 1)) 1 rows in
  let tbl = Hashtbl.create (List.length rows) in
  List.iter
    (fun (s, i, n, o) ->
      assert (not (Hashtbl.mem tbl (s, i)));
      Hashtbl.add tbl (s, i) (n, o))
    rows;
  make ~reset
    ~valid:(fun s i -> Hashtbl.mem tbl (s, i))
    ~n_states ~n_inputs
    ~next:(fun s i -> fst (Hashtbl.find tbl (s, i)))
    ~output:(fun s i -> snd (Hashtbl.find tbl (s, i)))
    ()

type tables = {
  tab_states : int;
  tab_inputs : int;
  tab_reset : int;
  tab_valid : bool array;
  tab_next : int array;
  tab_output : int array;
}

let tables m =
  let n = m.n_states and k = m.n_inputs in
  let valid = Array.make (n * k) false in
  let next = Array.make (n * k) 0 in
  let output = Array.make (n * k) 0 in
  for s = 0 to n - 1 do
    for i = 0 to k - 1 do
      let idx = (s * k) + i in
      if m.valid s i then begin
        valid.(idx) <- true;
        next.(idx) <- m.next s i;
        output.(idx) <- m.output s i
      end
    done
  done;
  {
    tab_states = n;
    tab_inputs = k;
    tab_reset = m.reset;
    tab_valid = valid;
    tab_next = next;
    tab_output = output;
  }

let tabulate m =
  let k = m.n_inputs in
  let t = tables m in
  {
    m with
    (* bounds-check the input: an out-of-alphabet [i] must read as
       invalid, not alias into state [s+1]'s row of the flat table
       (or run off its end at the last state) *)
    valid = (fun s i -> i >= 0 && i < k && t.tab_valid.((s * k) + i));
    next = (fun s i -> t.tab_next.((s * k) + i));
    output = (fun s i -> t.tab_output.((s * k) + i));
  }

let step m s i =
  if not (m.valid s i) then
    invalid_arg
      (Printf.sprintf "Fsm.step: input %s invalid in state %s" (m.input_name i)
         (m.state_name s));
  (m.next s i, m.output s i)

let run m word =
  let rec go s acc = function
    | [] -> List.rev acc
    | i :: rest ->
        let s', o = step m s i in
        go s' ((s, i, s', o) :: acc) rest
  in
  go m.reset [] word

let output_word m word = List.map (fun (_, _, _, o) -> o) (run m word)

let final_state m word =
  List.fold_left (fun s i -> fst (step m s i)) m.reset word

let valid_inputs m s =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if m.valid s i then i :: acc else acc) in
  go (m.n_inputs - 1) []

let reachable m =
  let seen = Array.make m.n_states false in
  let queue = Queue.create () in
  seen.(m.reset) <- true;
  Queue.add m.reset queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    for i = 0 to m.n_inputs - 1 do
      if m.valid s i then begin
        let s' = m.next s i in
        if not seen.(s') then begin
          seen.(s') <- true;
          Queue.add s' queue
        end
      end
    done
  done;
  seen

let n_reachable m =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (reachable m)

let transitions m =
  let seen = reachable m in
  let acc = ref [] in
  for s = m.n_states - 1 downto 0 do
    if seen.(s) then
      for i = m.n_inputs - 1 downto 0 do
        if m.valid s i then acc := (s, i, m.next s i, m.output s i) :: !acc
      done
  done;
  !acc

let n_transitions m =
  let seen = reachable m in
  let count = ref 0 in
  for s = 0 to m.n_states - 1 do
    if seen.(s) then
      for i = 0 to m.n_inputs - 1 do
        if m.valid s i then incr count
      done
  done;
  !count

let transition_graph m =
  let g = Simcov_graph.Digraph.create m.n_states in
  let seen = reachable m in
  for s = 0 to m.n_states - 1 do
    if seen.(s) then
      for i = 0 to m.n_inputs - 1 do
        if m.valid s i then
          ignore
            (Simcov_graph.Digraph.add_edge g ~src:s ~dst:(m.next s i) ~label:i ~cost:1)
      done
  done;
  g

(* Breadth-first search over a pair automaton; [mismatch] detects an
   observable difference on one input, [step2] advances both sides.
   Returns the shortest input word reaching a mismatch. *)
let pair_bfs ~n_pairs ~start ~inputs ~mismatch ~step2 =
  let visited = Hashtbl.create 1024 in
  let parent = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Hashtbl.add visited start ();
  Queue.add start queue;
  let rec word_of p acc =
    match Hashtbl.find_opt parent p with
    | None -> acc
    | Some (p', i) -> word_of p' (i :: acc)
  in
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let p = Queue.pop queue in
       List.iter
         (fun i ->
           if !result = None then
             match mismatch p i with
             | true -> result := Some (word_of p [ i ])
             | false -> (
                 match step2 p i with
                 | None -> ()
                 | Some p' ->
                     assert (p' >= 0 && p' < n_pairs);
                     if not (Hashtbl.mem visited p') then begin
                       Hashtbl.add visited p' ();
                       Hashtbl.add parent p' (p, i);
                       Queue.add p' queue
                     end))
         inputs;
       if !result <> None then raise Exit
     done
   with Exit -> ());
  !result

let equivalent a b =
  if a.n_inputs <> b.n_inputs then Error "input alphabets differ"
  else begin
    let inputs = List.init a.n_inputs Fun.id in
    let encode s1 s2 = (s1 * b.n_states) + s2 in
    let mismatch p i =
      let s1 = p / b.n_states and s2 = p mod b.n_states in
      let v1 = a.valid s1 i and v2 = b.valid s2 i in
      if v1 <> v2 then true
      else if v1 then a.output s1 i <> b.output s2 i
      else false
    in
    let step2 p i =
      let s1 = p / b.n_states and s2 = p mod b.n_states in
      if a.valid s1 i && b.valid s2 i then Some (encode (a.next s1 i) (b.next s2 i))
      else None
    in
    match
      pair_bfs
        ~n_pairs:(a.n_states * b.n_states)
        ~start:(encode a.reset b.reset) ~inputs ~mismatch ~step2
    with
    | None -> Ok []
    | Some w -> Ok w
  end

let distinguish m s1 s2 =
  if s1 = s2 then None
  else
    let inputs = List.init m.n_inputs Fun.id in
    let encode a b = (a * m.n_states) + b in
    let mismatch p i =
      let a = p / m.n_states and b = p mod m.n_states in
      let v1 = m.valid a i and v2 = m.valid b i in
      if v1 <> v2 then true else if v1 then m.output a i <> m.output b i else false
    in
    let step2 p i =
      let a = p / m.n_states and b = p mod m.n_states in
      if m.valid a i && m.valid b i then Some (encode (m.next a i) (m.next b i))
      else None
    in
    pair_bfs
      ~n_pairs:(m.n_states * m.n_states)
      ~start:(encode s1 s2) ~inputs ~mismatch ~step2

(* ∀k-distinguishability, Definition 5. A length-k input sequence is
   applicable when each step's input is valid in at least one of the
   two current states; a validity mismatch is itself an observable
   difference (the simulator would accept the vector on one machine
   and reject it on the other). F is monotone in k. *)
let forall_k_distinguishable m ~k s1 s2 =
  let memo = Hashtbl.create 256 in
  let rec go k p q =
    if p = q then false
    else if k = 0 then false
    else
      match Hashtbl.find_opt memo (k, p, q) with
      | Some r -> r
      | None ->
          let all = ref true and some_applicable = ref false in
          let i = ref 0 in
          while !all && !i < m.n_inputs do
            let inp = !i in
            let vp = m.valid p inp and vq = m.valid q inp in
            if vp || vq then begin
              some_applicable := true;
              if vp <> vq then () (* this sequence start distinguishes *)
              else if m.output p inp <> m.output q inp then ()
              else if not (go (k - 1) (m.next p inp) (m.next q inp)) then all := false
            end;
            incr i
          done;
          let r = !some_applicable && !all in
          Hashtbl.add memo (k, p, q) r;
          r
  in
  go k s1 s2

let forall_k_matrix m ~k =
  let n = m.n_states in
  let cur = Array.make_matrix n n false in
  let tab = tabulate m in
  for _round = 1 to k do
    let nxt = Array.make_matrix n n false in
    for p = 0 to n - 1 do
      for q = 0 to n - 1 do
        if p <> q then begin
          let all = ref true and some = ref false in
          let i = ref 0 in
          while !all && !i < tab.n_inputs do
            let inp = !i in
            let vp = tab.valid p inp and vq = tab.valid q inp in
            if vp || vq then begin
              some := true;
              if vp = vq then
                if tab.output p inp = tab.output q inp then begin
                  let p' = tab.next p inp and q' = tab.next q inp in
                  if not cur.(p').(q') then all := false
                end
            end;
            incr i
          done;
          nxt.(p).(q) <- !some && !all
        end
      done
    done;
    for p = 0 to n - 1 do
      for q = 0 to n - 1 do
        cur.(p).(q) <- nxt.(p).(q)
      done
    done
  done;
  cur

let min_forall_k ?(bound = 16) m =
  let seen = reachable m in
  let rec try_k k =
    if k > bound then None
    else begin
      let mat = forall_k_matrix m ~k in
      let ok = ref true in
      for p = 0 to m.n_states - 1 do
        for q = 0 to m.n_states - 1 do
          if p <> q && seen.(p) && seen.(q) && not mat.(p).(q) then ok := false
        done
      done;
      if !ok then Some k else try_k (k + 1)
    end
  in
  try_k 1

(* Partition refinement: initial classes by the (validity, output)
   signature over all inputs, refined by successor classes until
   stable. Classical Moore construction on reachable states. *)
let minimize m =
  let m = tabulate m in
  let n = m.n_states in
  let seen = reachable m in
  let cls = Array.make n (-1) in
  let sig0 s =
    List.init m.n_inputs (fun i ->
        if m.valid s i then Some (m.output s i) else None)
  in
  let assign_classes signature =
    (* snapshot every signature against the OLD classes before touching
       [cls]: updating in place would let later states see predecessors'
       already-renumbered classes, conflating old and new ids (which
       over-splits — equivalent states land in different classes) *)
    let keys = Array.init n (fun s -> if seen.(s) then Some (signature s) else None) in
    let tbl = Hashtbl.create 64 in
    let count = ref 0 in
    for s = 0 to n - 1 do
      match keys.(s) with
      | None -> ()
      | Some key -> (
          match Hashtbl.find_opt tbl key with
          | Some c -> cls.(s) <- c
          | None ->
              Hashtbl.add tbl key !count;
              cls.(s) <- !count;
              incr count)
    done;
    !count
  in
  let n_cls = ref (assign_classes sig0) in
  let stable = ref false in
  while not !stable do
    let refine s =
      ( cls.(s),
        List.init m.n_inputs (fun i -> if m.valid s i then Some cls.(m.next s i) else None)
      )
    in
    let n' = assign_classes refine in
    if n' = !n_cls then stable := true else n_cls := n'
  done;
  (* representative per class *)
  let rep = Array.make !n_cls (-1) in
  for s = n - 1 downto 0 do
    if seen.(s) then rep.(cls.(s)) <- s
  done;
  let quotient =
    make ~reset:cls.(m.reset)
      ~valid:(fun c i -> m.valid rep.(c) i)
      ~state_name:(fun c -> "q" ^ string_of_int c)
      ~input_name:m.input_name ~n_states:!n_cls ~n_inputs:m.n_inputs
      ~next:(fun c i -> cls.(m.next rep.(c) i))
      ~output:(fun c i -> m.output rep.(c) i)
      ()
  in
  (quotient, cls)

let random_connected rng ~n_states ~n_inputs ~n_outputs =
  assert (n_states > 0 && n_inputs > 0 && n_outputs > 0);
  let next = Array.make_matrix n_states n_inputs 0 in
  let output = Array.make_matrix n_states n_inputs 0 in
  for s = 0 to n_states - 1 do
    for i = 0 to n_inputs - 1 do
      next.(s).(i) <- Simcov_util.Rng.int rng n_states;
      output.(s).(i) <- Simcov_util.Rng.int rng n_outputs
    done
  done;
  (* Seed a Hamiltonian cycle through a random permutation so the
     transition graph is strongly connected. *)
  let perm = Array.init n_states Fun.id in
  Simcov_util.Rng.shuffle rng perm;
  for idx = 0 to n_states - 1 do
    let s = perm.(idx) and s' = perm.((idx + 1) mod n_states) in
    let i = Simcov_util.Rng.int rng n_inputs in
    next.(s).(i) <- s'
  done;
  make ~n_states ~n_inputs
    ~next:(fun s i -> next.(s).(i))
    ~output:(fun s i -> output.(s).(i))
    ()

let pp ppf m =
  Format.fprintf ppf "mealy(%d states, %d inputs, reset %s, %d reachable, %d transitions)"
    m.n_states m.n_inputs (m.state_name m.reset) (n_reachable m) (n_transitions m)
