(** Pass orchestrator: runs every analysis over a circuit and bundles
    the findings into one {!report}.

    Pass order matters only once: {!Structural.check_circuit} runs
    first, and when it reports an out-of-range leaf ([SA405]) the
    lowering-dependent passes (comb-cycle, graph-structural, ternary,
    dead-logic) are skipped — lowering such a circuit would crash, and
    any further finding would be noise next to a malformed netlist.

    The whole run is budget-aware: the {!Simcov_util.Budget.t} is
    stepped once per pass and threaded into the ternary fixpoint; on
    {!Simcov_util.Budget.Budget_exceeded} the report carries the
    partial findings with {!report.truncated} set, never an
    exception. *)

type report = {
  name : string;  (** model name, for headers and JSON *)
  n_inputs : int;
  n_regs : int;
  n_outputs : int;
  n_nets : int;
      (** hash-consed nets in the lowered graph; [0] when lowering was
          skipped because of [SA405] *)
  passes : string list;  (** pass ids actually run, in order *)
  skipped : string list;
      (** pass ids scheduled but not run (budget truncation); a pass
          that completed one of its two phases stays in [passes] only *)
  diags : Diag.t list;  (** sorted with {!Diag.compare} *)
  hints : Deadlogic.hint list;
      (** dead-latch abstraction hints (empty when dead-logic was
          skipped) *)
  truncated : Simcov_util.Budget.resource option;
}

val run :
  ?budget:Simcov_util.Budget.t ->
  ?name:string ->
  ?against:Simcov_netlist.Circuit.t ->
  Simcov_netlist.Circuit.t ->
  report
(** [run c] lints [c]. [against] is the {e concrete} model [c] was
    abstracted from; when given, the homo-precheck cone-compatibility
    pass ({!Homo_precheck.check_circuits}) runs too. *)

val count : report -> Diag.severity -> int
val worst : report -> Diag.severity option
(** Highest severity present, [None] for a clean report. *)

val fails : report -> threshold:Diag.severity -> bool
(** Does any diagnostic reach [threshold]? (The [--fail-on] test.) *)

val to_json : report -> Simcov_util.Json.t
(** The documented schema (DESIGN.md §7): an object with [schema]
    (["simcov-lint/1"]), [model] stats, [passes], [skipped],
    [diagnostics] (see {!Diag.to_json}), [hints] and [truncated]. *)

val of_json : Simcov_util.Json.t -> (report, string) result
(** Inverse of {!to_json}, used by the schema round-trip tests. *)

val pp : Format.formatter -> report -> unit
(** Human rendering: header, one line per diagnostic, hint lines, and
    a severity tally. *)
