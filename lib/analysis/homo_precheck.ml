open Simcov_fsm
open Simcov_abstraction
open Simcov_netlist

let pass = "homo-precheck"

let check_mapping (m : Fsm.t) (map : Homomorphism.mapping) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let range_errors = ref 0 in
  let check_range what v bound ctx =
    if v < 0 || v >= bound then begin
      incr range_errors;
      if !range_errors <= 5 then
        add
          (Diag.make ~code:"SA501" ~severity:Diag.Error ~pass ~loc:Diag.Whole_circuit
             (Printf.sprintf
                "%s maps %s to %d, outside the declared abstract range [0, %d)"
                what ctx v bound))
    end
  in
  let reachable = Fsm.reachable m in
  let state_hit = Array.make map.Homomorphism.n_abs_states false in
  let input_hit = Array.make map.Homomorphism.n_abs_inputs false in
  (* signature of each abstract (state, input): the abstract output,
     with the first concrete witness *)
  let sig_tbl : (int * int, int * (int * int)) Hashtbl.t = Hashtbl.create 256 in
  let conflict_reported = ref 0 in
  for s = 0 to m.Fsm.n_states - 1 do
    if reachable.(s) then begin
      let a_s = map.Homomorphism.state_map s in
      check_range "state map" a_s map.Homomorphism.n_abs_states
        (Printf.sprintf "state %s" (m.Fsm.state_name s));
      if a_s >= 0 && a_s < map.Homomorphism.n_abs_states then state_hit.(a_s) <- true;
      List.iter
        (fun i ->
          let a_i = map.Homomorphism.input_map i in
          check_range "input map" a_i map.Homomorphism.n_abs_inputs
            (Printf.sprintf "input %s" (m.Fsm.input_name i));
          if a_i >= 0 && a_i < map.Homomorphism.n_abs_inputs then input_hit.(a_i) <- true;
          let o = m.Fsm.output s i in
          let a_o = map.Homomorphism.output_map o in
          if a_s >= 0 && a_s < map.Homomorphism.n_abs_states && a_i >= 0
             && a_i < map.Homomorphism.n_abs_inputs
          then
            match Hashtbl.find_opt sig_tbl (a_s, a_i) with
            | None -> Hashtbl.add sig_tbl (a_s, a_i) (a_o, (s, i))
            | Some (a_o', (s', i')) ->
                if a_o <> a_o' then begin
                  incr conflict_reported;
                  if !conflict_reported <= 5 then
                    add
                      (Diag.make ~code:"SA504" ~severity:Diag.Error ~pass
                         ~loc:Diag.Whole_circuit
                         ~related:
                           [ m.Fsm.state_name s'; m.Fsm.state_name s ]
                         (Printf.sprintf
                            "states %s and %s are merged into abstract state %d \
                             but disagree on the abstract output under abstract \
                             input %d (concrete inputs %s vs %s map to outputs \
                             %d vs %d): no quotient machine can exist"
                            (m.Fsm.state_name s') (m.Fsm.state_name s) a_s a_i
                            (m.Fsm.input_name i') (m.Fsm.input_name i) a_o' a_o))
                end)
        (Fsm.valid_inputs m s)
    end
  done;
  if !range_errors = 0 then begin
    let missing hit =
      let acc = ref [] in
      Array.iteri (fun a h -> if not h then acc := a :: !acc) hit;
      List.rev !acc
    in
    (match missing state_hit with
    | [] -> ()
    | states ->
        add
          (Diag.make ~code:"SA502" ~severity:Diag.Warning ~pass ~loc:Diag.Whole_circuit
             (Printf.sprintf
                "state map is not surjective: abstract state%s %s ha%s no \
                 reachable concrete preimage"
                (if List.length states = 1 then "" else "s")
                (String.concat ", " (List.map string_of_int states))
                (if List.length states = 1 then "s" else "ve"))));
    match missing input_hit with
    | [] -> ()
    | inputs ->
        add
          (Diag.make ~code:"SA503" ~severity:Diag.Warning ~pass ~loc:Diag.Whole_circuit
             (Printf.sprintf
                "input map is not surjective: abstract input%s %s never occur%s \
                 on a reachable, valid transition"
                (if List.length inputs = 1 then "" else "s")
                (String.concat ", " (List.map string_of_int inputs))
                (if List.length inputs = 1 then "s" else "")))
  end;
  List.rev !diags

let closure_names (c : Circuit.t) seed_index =
  let closure = Circuit.reg_support_closure c [ seed_index ] in
  List.fold_left
    (fun set r -> c.Circuit.regs.(r).Circuit.name :: set)
    [] closure

let check_circuits ~(concrete : Circuit.t) ~(abstract : Circuit.t) =
  let conc_index = Hashtbl.create 64 in
  Array.iteri
    (fun i (r : Circuit.reg) -> Hashtbl.replace conc_index r.Circuit.name i)
    concrete.Circuit.regs;
  let matched name = Hashtbl.mem conc_index name in
  let diags = ref [] in
  Array.iteri
    (fun a_i (a_reg : Circuit.reg) ->
      match Hashtbl.find_opt conc_index a_reg.Circuit.name with
      | None -> () (* renamed or re-encoded state: nothing to compare *)
      | Some c_i ->
          let abs_cone =
            List.filter matched (closure_names abstract a_i)
          in
          let conc_cone = closure_names concrete c_i in
          let extra = List.filter (fun n -> not (List.mem n conc_cone)) abs_cone in
          if extra <> [] then
            diags :=
              Diag.make ~code:"SA505" ~severity:Diag.Warning ~pass
                ~loc:(Diag.Register a_reg.Circuit.name)
                ~related:extra
                (Printf.sprintf
                   "abstract register '%s' transitively depends on %s, which its \
                    concrete counterpart does not: the abstraction introduced a \
                    dependency, so it cannot be a projection of the concrete \
                    model"
                   a_reg.Circuit.name
                   (String.concat ", "
                      (List.map (fun n -> "'" ^ n ^ "'") extra)))
              :: !diags)
    abstract.Circuit.regs;
  List.rev !diags
