open Simcov_netlist
module Digraph = Simcov_graph.Digraph

type cell_kind = Pi | Cst of bool | Gate of string | Latch of bool

type net = {
  net_name : string;
  mutable net_drivers : (cell_kind * int list) list;  (* reversed *)
}

type t = {
  mutable nets : net array;  (* grow-on-demand *)
  mutable count : int;
  by_name : (string, int) Hashtbl.t;
  mutable po_rev : int list;
  po_set : (int, unit) Hashtbl.t;
}

let create () =
  {
    nets = Array.make 64 { net_name = ""; net_drivers = [] };
    count = 0;
    by_name = Hashtbl.create 64;
    po_rev = [];
    po_set = Hashtbl.create 16;
  }

let n_nets g = g.count

let add_net g ?name () =
  let id = g.count in
  let net_name = match name with Some n -> n | None -> Printf.sprintf "$n%d" id in
  if id = Array.length g.nets then begin
    let bigger = Array.make (2 * id) g.nets.(0) in
    Array.blit g.nets 0 bigger 0 id;
    g.nets <- bigger
  end;
  g.nets.(id) <- { net_name; net_drivers = [] };
  g.count <- id + 1;
  if not (Hashtbl.mem g.by_name net_name) then Hashtbl.add g.by_name net_name id;
  id

let find_or_add_net g name =
  match Hashtbl.find_opt g.by_name name with
  | Some id -> id
  | None -> add_net g ~name ()

let add_driver g ~net ~kind ~fanin =
  let n = g.nets.(net) in
  n.net_drivers <- (kind, fanin) :: n.net_drivers

let mark_po g id =
  if not (Hashtbl.mem g.po_set id) then begin
    Hashtbl.add g.po_set id ();
    g.po_rev <- id :: g.po_rev
  end

let name g id = g.nets.(id).net_name
let drivers g id = List.rev g.nets.(id).net_drivers
let pos g = List.rev g.po_rev

let fanout_count g =
  let counts = Array.make g.count 0 in
  for id = 0 to g.count - 1 do
    List.iter
      (fun (_, fanin) -> List.iter (fun f -> counts.(f) <- counts.(f) + 1) fanin)
      g.nets.(id).net_drivers
  done;
  counts

let digraph_with g ~include_latches =
  let dg = Digraph.create g.count in
  for id = 0 to g.count - 1 do
    List.iter
      (fun (kind, fanin) ->
        let sequential = match kind with Latch _ -> true | _ -> false in
        if include_latches || not sequential then
          List.iter
            (fun f -> ignore (Digraph.add_edge dg ~src:f ~dst:id ~label:0 ~cost:0))
            fanin)
      g.nets.(id).net_drivers
  done;
  dg

let comb_digraph g = digraph_with g ~include_latches:false
let full_digraph g = digraph_with g ~include_latches:true

(* reverse reachability from [seeds] over the full graph *)
let reverse_reach g seeds =
  let seen = Array.make g.count false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    List.iter
      (fun (_, fanin) ->
        List.iter
          (fun f ->
            if not seen.(f) then begin
              seen.(f) <- true;
              Queue.add f queue
            end)
          fanin)
      g.nets.(id).net_drivers
  done;
  seen

let observable g = reverse_reach g (pos g)
let reaches g target = reverse_reach g [ target ]

type circuit_map = {
  input_net : int array;
  reg_net : int array;
  output_net : int array;
  constraint_net : int option;
}

let of_circuit (c : Circuit.t) =
  let g = create () in
  let input_net =
    Array.map (fun n ->
        let id = add_net g ~name:n () in
        add_driver g ~net:id ~kind:Pi ~fanin:[];
        id)
      c.Circuit.input_names
  in
  (* latch output nets first, so next-state expressions can refer to
     them before their drivers are attached *)
  let reg_net =
    Array.map (fun (r : Circuit.reg) -> add_net g ~name:r.Circuit.name ()) c.Circuit.regs
  in
  (* hash-consed lowering of expression nodes: one net per distinct
     (op, fanin) shape, so shared logic is shared in the graph *)
  let cache : (string * int list, int) Hashtbl.t = Hashtbl.create 256 in
  let cell op fanin =
    match Hashtbl.find_opt cache (op, fanin) with
    | Some id -> id
    | None ->
        let id = add_net g () in
        (match op with
        | "const0" -> add_driver g ~net:id ~kind:(Cst false) ~fanin:[]
        | "const1" -> add_driver g ~net:id ~kind:(Cst true) ~fanin:[]
        | _ -> add_driver g ~net:id ~kind:(Gate op) ~fanin);
        Hashtbl.add cache (op, fanin) id;
        id
  in
  let rec lower e =
    match e with
    | Expr.Const b -> cell (if b then "const1" else "const0") []
    | Expr.Input i -> input_net.(i)
    | Expr.Reg r -> reg_net.(r)
    | Expr.Not a -> cell "not" [ lower a ]
    | Expr.And (a, b) -> cell "and" [ lower a; lower b ]
    | Expr.Or (a, b) -> cell "or" [ lower a; lower b ]
    | Expr.Xor (a, b) -> cell "xor" [ lower a; lower b ]
    | Expr.Mux (s, h, l) -> cell "mux" [ lower s; lower h; lower l ]
  in
  Array.iteri
    (fun i (r : Circuit.reg) ->
      add_driver g ~net:reg_net.(i) ~kind:(Latch r.Circuit.init)
        ~fanin:[ lower r.Circuit.next ])
    c.Circuit.regs;
  (* output nets are keyed by port name (in a namespace of their own,
     so a port legitimately named like an input or register does not
     collide): a duplicated port name becomes one net with two
     drivers, i.e. a multiply-driven net *)
  let out_by_name = Hashtbl.create 16 in
  let output_net =
    Array.map
      (fun (o : Circuit.port) ->
        let id =
          match Hashtbl.find_opt out_by_name o.Circuit.port_name with
          | Some id -> id
          | None ->
              let id = add_net g ~name:o.Circuit.port_name () in
              Hashtbl.add out_by_name o.Circuit.port_name id;
              id
        in
        add_driver g ~net:id ~kind:(Gate "buf") ~fanin:[ lower o.Circuit.expr ];
        mark_po g id;
        id)
      c.Circuit.outputs
  in
  let constraint_net =
    if c.Circuit.input_constraint = Expr.tru then None
    else begin
      let id = add_net g ~name:"$constraint" () in
      add_driver g ~net:id ~kind:(Gate "buf") ~fanin:[ lower c.Circuit.input_constraint ];
      Some id
    end
  in
  (g, { input_net; reg_net; output_net; constraint_net })
