(** Structural prechecks for homomorphic abstractions (pass
    [homo-precheck], codes [SA501]–[SA505]).

    {!Simcov_abstraction.Homomorphism.quotient} proves (or refutes)
    transition preservation by exhaustive product traversal; when it
    fails it can only say "these two concrete transitions disagree".
    These prechecks are cheap necessary conditions that run first and
    explain the failure in the model's own vocabulary:

    - [SA501] (error) a map image falls outside the declared abstract
      range — the mapping is not even well-formed.
    - [SA502] (warning) some abstract state has no reachable concrete
      preimage: the quotient would contain unreachable states (usually
      an over-wide abstract alphabet, the §6.3 "abstracting too much"
      smell in reverse).
    - [SA503] (warning) likewise for abstract inputs.
    - [SA504] (error) two reachable concrete states merged by the state
      map disagree on the mapped output for some merged input — a
      one-step witness that {e no} quotient machine can exist, reported
      with the concrete state/input names.

    {!check_circuits} covers the netlist side ("cone compatibility"):
    registers are matched across an abstraction step {e by name}, and
    - [SA505] (warning) fires when an abstract register's fanin cone
      (restricted to matched registers) contains a register its
      concrete counterpart's cone does not: the "abstraction" added a
      dependency, so it cannot be a projection of the concrete model. *)

open Simcov_fsm
open Simcov_abstraction

val check_mapping : Fsm.t -> Homomorphism.mapping -> Diag.t list
(** Runs over reachable states and valid inputs only; linear in the
    number of concrete transitions. *)

val check_circuits :
  concrete:Simcov_netlist.Circuit.t ->
  abstract:Simcov_netlist.Circuit.t ->
  Diag.t list
