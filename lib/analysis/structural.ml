open Simcov_netlist

let kind_name = function
  | Netgraph.Pi -> "primary input"
  | Netgraph.Cst b -> Printf.sprintf "constant %d" (if b then 1 else 0)
  | Netgraph.Gate op -> op ^ " gate"
  | Netgraph.Latch _ -> "latch"

let check_graph g =
  let fanout = Netgraph.fanout_count g in
  let po = Array.make (Netgraph.n_nets g) false in
  List.iter (fun id -> po.(id) <- true) (Netgraph.pos g);
  let diags = ref [] in
  for net = 0 to Netgraph.n_nets g - 1 do
    let ds = Netgraph.drivers g net in
    (match ds with
    | [] when fanout.(net) > 0 || po.(net) ->
        diags :=
          Diag.make ~code:"SA401" ~severity:Diag.Error ~pass:"structural-lint"
            ~loc:(Diag.Net (Netgraph.name g net))
            (Printf.sprintf
               "floating net: %s but has no driver"
               (if po.(net) then "marked as a primary output"
                else Printf.sprintf "read by %d fanin slot%s" fanout.(net)
                    (if fanout.(net) = 1 then "" else "s")))
          :: !diags
    | [] | [ _ ] -> ()
    | ds ->
        diags :=
          Diag.make ~code:"SA402" ~severity:Diag.Error ~pass:"structural-lint"
            ~loc:(Diag.Net (Netgraph.name g net))
            ~related:(List.map (fun (k, _) -> kind_name k) ds)
            (Printf.sprintf "multiply-driven net: %d drivers contend for it"
               (List.length ds))
          :: !diags)
  done;
  List.rev !diags

(* names of the shape base[idx]; [None] otherwise *)
let split_indexed name =
  let n = String.length name in
  if n < 4 || name.[n - 1] <> ']' then None
  else
    match String.rindex_opt name '[' with
    | None | Some 0 -> None
    | Some l -> (
        match int_of_string_opt (String.sub name (l + 1) (n - l - 2)) with
        | Some idx when idx >= 0 -> Some (String.sub name 0 l, idx)
        | _ -> None)

let family_diags kind names =
  let families = Hashtbl.create 8 in
  Array.iter
    (fun name ->
      match split_indexed name with
      | None -> ()
      | Some (base, idx) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt families base) in
          Hashtbl.replace families base (idx :: prev))
    names;
  Hashtbl.fold
    (fun base indices acc ->
      let sorted = List.sort Int.compare indices in
      let distinct = List.sort_uniq Int.compare indices in
      let width = List.length sorted in
      let contiguous =
        distinct = List.init (List.length distinct) Fun.id && width = List.length distinct
      in
      if contiguous then acc
      else
        Diag.make ~code:"SA406" ~severity:Diag.Warning ~pass:"structural-lint"
          ~loc:(Diag.Net (base ^ "[]"))
          ~related:(List.map (fun i -> Printf.sprintf "%s[%d]" base i) sorted)
          (Printf.sprintf
             "%s vector '%s' is mis-wired: %d element%s with %s (a width/arity \
              mismatch in the netlist description)"
             kind base width
             (if width = 1 then "" else "s")
             (if List.length distinct < width then "duplicate indices"
              else "index gaps"))
        :: acc)
    families []

let check_circuit (c : Circuit.t) =
  let ni = Circuit.n_inputs c and nr = Circuit.n_regs c in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* --- SA403: unused primary inputs --- *)
  let used = Array.make ni false in
  let bad_leaves = ref [] in
  let scan where e =
    let ins, rgs = Expr.support e in
    List.iter (fun i -> if i < ni then used.(i) <- true else bad_leaves := (where, "input", i) :: !bad_leaves) ins;
    List.iter (fun r -> if r >= nr then bad_leaves := (where, "register", r) :: !bad_leaves) rgs
  in
  Array.iter (fun (r : Circuit.reg) -> scan (Diag.Register r.Circuit.name) r.Circuit.next) c.Circuit.regs;
  Array.iter (fun (o : Circuit.port) -> scan (Diag.Output_port o.Circuit.port_name) o.Circuit.expr) c.Circuit.outputs;
  scan Diag.Whole_circuit c.Circuit.input_constraint;
  Array.iteri
    (fun i name ->
      if not used.(i) then
        add
          (Diag.make ~code:"SA403" ~severity:Diag.Warning ~pass:"structural-lint"
             ~loc:(Diag.Primary_input name)
             (Printf.sprintf
                "unused primary input: '%s' is read by no next-state function, \
                 output or constraint"
                name)))
    c.Circuit.input_names;
  (* --- SA405: out-of-range leaves --- *)
  List.iter
    (fun (where, what, idx) ->
      add
        (Diag.make ~code:"SA405" ~severity:Diag.Error ~pass:"structural-lint" ~loc:where
           (Printf.sprintf
              "expression references %s index %d, but the circuit declares only \
               %d %ss"
              what idx
              (if what = "input" then ni else nr)
              what)))
    (List.rev !bad_leaves);
  (* --- SA404: duplicate declaration names --- *)
  let seen = Hashtbl.create 32 in
  let declare kind name loc =
    match Hashtbl.find_opt seen name with
    | Some prior_kind ->
        add
          (Diag.make ~code:"SA404" ~severity:Diag.Error ~pass:"structural-lint" ~loc
             (Printf.sprintf
                "duplicate name: '%s' already declared as a %s — name-based \
                 tooling (reg_index, serialization, abstraction traces) becomes \
                 ambiguous"
                name prior_kind))
    | None -> Hashtbl.add seen name kind
  in
  Array.iter (fun n -> declare "primary input" n (Diag.Primary_input n)) c.Circuit.input_names;
  Array.iter
    (fun (r : Circuit.reg) -> declare "register" r.Circuit.name (Diag.Register r.Circuit.name))
    c.Circuit.regs;
  (* --- SA406: indexed families with gaps/duplicates --- *)
  List.iter add (family_diags "input" c.Circuit.input_names);
  List.iter add
    (family_diags "register" (Array.map (fun (r : Circuit.reg) -> r.Circuit.name) c.Circuit.regs));
  List.iter add
    (family_diags "output"
       (Array.map (fun (o : Circuit.port) -> o.Circuit.port_name) c.Circuit.outputs));
  List.rev !diags

let check c =
  let g, _ = Netgraph.of_circuit c in
  check_graph g @ check_circuit c
