(** Shared diagnostics core for the static-analysis passes.

    Every lint pass reports findings as {!t} values: a stable code
    (["SA101"], ...), a severity, the pass that produced it, a location
    in the netlist (register, net, primary input, output port, or the
    whole circuit), a human message and an optional list of related
    nets (e.g. the net path of a combinational cycle). Diagnostics
    render both human-readable (one line, [grep]-able) and as JSON for
    machine consumption.

    Code blocks by pass:
    - [SA1xx] comb-cycle: combinational-loop detection
    - [SA2xx] ternary-const: 0/1/X constant propagation
    - [SA3xx] dead-logic: primary-output cone analysis
    - [SA4xx] structural-lint: floating / multiply-driven / unused nets
    - [SA5xx] homo-precheck: homomorphic-abstraction prechecks
    - [SA6xx] fsm-lint: FSM-level precondition certification (Theorem 1) *)

type severity = Info | Warning | Error

type location =
  | Register of string  (** a state element, by name *)
  | Net of string  (** an internal net of the gate-level graph *)
  | Primary_input of string
  | Output_port of string
  | State of string  (** an explicit FSM state, by name *)
  | Input_symbol of string  (** an FSM input symbol, by name *)
  | Word of string  (** an input word, rendered as symbol names *)
  | Whole_circuit

type t = {
  code : string;  (** stable, e.g. ["SA101"] *)
  severity : severity;
  pass : string;  (** pass id, e.g. ["comb-cycle"] *)
  loc : location;
  message : string;
  related : string list;
      (** related net/register names (cycle paths, conflicting
          drivers); may be empty *)
}

val make :
  code:string ->
  severity:severity ->
  pass:string ->
  loc:location ->
  ?related:string list ->
  string ->
  t
(** [make ~code ~severity ~pass ~loc msg]. *)

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val severity_name : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val severity_of_name : string -> severity option

val compare : t -> t -> int
(** Sort key: descending severity, then code, then location, then
    message — a stable presentation order. *)

val loc_kind : location -> string
(** The JSON kind tag: ["register"], ["net"], ["input"], ["output"],
    ["state"], ["symbol"], ["word"] or ["circuit"]. *)

val loc_name : location -> string
(** The name inside the location, or [""] for {!Whole_circuit}. *)

val pp : Format.formatter -> t -> unit
(** One line:
    [error[SA101] comb-cycle @ net 'x': message (via: a -> b -> a)]. *)

val to_json : t -> Simcov_util.Json.t
val of_json : Simcov_util.Json.t -> (t, string) result
(** Inverse of {!to_json} (used by the schema round-trip tests). *)

type catalog_entry = {
  entry_code : string;  (** stable code, e.g. ["SA101"] *)
  default_severity : severity;
  title : string;  (** one-line description (the DESIGN.md table row) *)
  fix : string;  (** suggested fix / remediation hint *)
}

val catalog : catalog_entry list
(** Every stable code with its default severity, a one-line
    description and a suggested fix — the single source of truth the
    DESIGN.md §7/§11 tables and [simcov lint --explain] render. Codes
    are unique (asserted by a unit test). *)

val explain : string -> catalog_entry option
(** [explain "SA101"] looks up the catalog entry for a stable code. *)
