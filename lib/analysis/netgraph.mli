(** Gate-level netlist graph — the shared substrate of the structural
    passes.

    A {!t} is a set of {e nets} (vertices, with names), each driven by
    zero or more {e drivers} (a cell kind plus fanin nets), plus a set
    of primary-output markers. Well-formed circuits lower to graphs
    with exactly one driver per net and no combinational cycles;
    hand-built graphs (test fixtures, future front ends) may violate
    both, which is exactly what the lint passes detect.

    {!of_circuit} lowers a {!Simcov_netlist.Circuit.t}: one [Pi] net
    per primary input, one [Latch] net per register (the latch's fanin
    is the root net of its next-state expression), one hash-consed
    [Gate] net per distinct expression node, and one [buf]-driven net
    per output port (marked PO). Output nets are keyed by {e name}, so
    duplicate port names become a genuinely multiply-driven net. The
    input-constraint root is lowered too (see {!constraint_net}) but is
    {e not} a PO: cone analyses follow the paper and measure
    observability against outputs only. *)

type cell_kind =
  | Pi  (** primary input *)
  | Cst of bool  (** constant driver *)
  | Gate of string  (** combinational cell; the string names the op *)
  | Latch of bool  (** state element; payload is the reset value *)

type t

val create : unit -> t

val add_net : t -> ?name:string -> unit -> int
(** New net; auto-named ["$n<i>"] when [name] is omitted. *)

val find_or_add_net : t -> string -> int
(** Net by name, creating it (undriven) if absent. *)

val add_driver : t -> net:int -> kind:cell_kind -> fanin:int list -> unit
(** Attach a driver. A second driver on the same net makes it
    multiply-driven (reported by the structural pass, tolerated
    here). *)

val mark_po : t -> int -> unit

val n_nets : t -> int
val name : t -> int -> string
val drivers : t -> int -> (cell_kind * int list) list
(** In attachment order. *)

val pos : t -> int list
(** Primary-output nets, in marking order (duplicates removed). *)

val fanout_count : t -> int array
(** Per net: number of driver fanin slots reading it (PO marking not
    counted). *)

val comb_digraph : t -> Simcov_graph.Digraph.t
(** One vertex per net; one edge [fanin -> net] for every fanin of
    every {e combinational} driver ([Gate]/[Cst]/[Pi] — latch drivers
    are sequential and contribute no edge). Cycles in this graph are
    combinational cycles. *)

val full_digraph : t -> Simcov_graph.Digraph.t
(** Same, but latch drivers contribute edges too — reachability here
    is the (sequential) cone of influence. *)

val observable : t -> bool array
(** Per net: can the net reach some primary output in
    {!full_digraph}? POs themselves are observable. *)

val reaches : t -> int -> bool array
(** [reaches g target]: per net, can it reach [target] in
    {!full_digraph}? [target] reaches itself. *)

(** {1 Lowering} *)

type circuit_map = {
  input_net : int array;  (** per primary input index *)
  reg_net : int array;  (** per register index *)
  output_net : int array;  (** per output port index (name-keyed) *)
  constraint_net : int option;
      (** root of the input constraint, when not trivially true *)
}

val of_circuit : Simcov_netlist.Circuit.t -> t * circuit_map
