(** Structural lint (pass [structural-lint], codes [SA401]–[SA406]).

    Graph-level checks ({!check_graph}, meaningful for hand-built
    {!Netgraph} descriptions and future front ends — circuits lowered
    from the expression IR cannot float a net, but they {e can}
    multiply-drive one via duplicate output port names):
    - [SA401] floating net: read by some fanin (or marked PO) but never
      driven.
    - [SA402] multiply-driven net: two or more drivers.

    Circuit-level checks ({!check_circuit}):
    - [SA403] unused primary input: read by no next-state function,
      output or constraint.
    - [SA404] duplicate declaration name among inputs, among registers,
      or between an input and a register (name-based tooling —
      [reg_index], serialization diffs, abstraction traces — becomes
      ambiguous).
    - [SA405] out-of-range leaf: an expression references an
      input/register index past the interface (only constructible by
      hand; {!Simcov_netlist.Serialize} already rejects it at load
      time).
    - [SA406] width misuse in an indexed family: nets named
      [base\[i\]] whose indices have gaps or duplicates — a vector
      declared or wired with the wrong width. *)

val check_graph : Netgraph.t -> Diag.t list
val check_circuit : Simcov_netlist.Circuit.t -> Diag.t list

val check : Simcov_netlist.Circuit.t -> Diag.t list
(** Both levels over the lowered circuit. *)
