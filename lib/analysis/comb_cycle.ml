module Digraph = Simcov_graph.Digraph
module Scc = Simcov_graph.Scc

(* A concrete cycle through [start], walking out-edges restricted to
   the SCC [comp_id]. Any walk that never leaves an SCC must revisit a
   net; the loop from the first revisit is the reported path. *)
let cycle_path dg comp comp_id start =
  let order = Hashtbl.create 8 in
  let path = ref [] in
  (* explicit loop (not recursion): SCCs of lowered netlists can span
     the whole design, and the walk is as long as the component *)
  let v = ref start and len = ref 0 and result = ref None in
  while !result = None do
    match Hashtbl.find_opt order !v with
    | Some first ->
        (* drop the lead-in before the first revisited net *)
        let cyc = List.filteri (fun i _ -> i >= first) (List.rev !path) in
        result := Some (cyc @ [ !v ])
    | None -> (
        Hashtbl.add order !v !len;
        path := !v :: !path;
        let next =
          List.find_map
            (fun (e : Digraph.edge) ->
              if comp.(e.Digraph.dst) = comp_id then Some e.Digraph.dst else None)
            (Digraph.out_edges dg !v)
        in
        match next with
        | Some w ->
            v := w;
            incr len
        | None -> result := Some [ !v ] (* unreachable for a true SCC; defensive *))
  done;
  Option.get !result

let check_graph g =
  let dg = Netgraph.comb_digraph g in
  let comp, k = Scc.components dg in
  let size = Array.make k 0 in
  let first_member = Array.make k (-1) in
  for v = Netgraph.n_nets g - 1 downto 0 do
    size.(comp.(v)) <- size.(comp.(v)) + 1;
    first_member.(comp.(v)) <- v
  done;
  let self_loop = Array.make (Netgraph.n_nets g) false in
  Digraph.iter_edges
    (fun e -> if e.Digraph.src = e.Digraph.dst then self_loop.(e.Digraph.src) <- true)
    dg;
  let diags = ref [] in
  for c = 0 to k - 1 do
    let v = first_member.(c) in
    if v >= 0 && (size.(c) > 1 || self_loop.(v)) then begin
      let path = cycle_path dg comp c v in
      let names = List.map (Netgraph.name g) path in
      diags :=
        Diag.make ~code:"SA101" ~severity:Diag.Error ~pass:"comb-cycle"
          ~loc:(Diag.Net (Netgraph.name g v))
          ~related:names
          (Printf.sprintf
             "combinational cycle through %d net%s: unclocked feedback has no \
              fixed-point semantics here"
             (List.length path - 1)
             (if List.length path - 1 = 1 then "" else "s"))
        :: !diags
    end
  done;
  List.rev !diags

let check c =
  let g, _ = Netgraph.of_circuit c in
  check_graph g
