open Simcov_netlist
module Budget = Simcov_util.Budget

type value = Zero | One | Both

let of_bool b = if b then One else Zero
let join a b = if a = b then a else Both
let to_string = function Zero -> "0" | One -> "1" | Both -> "X"

let v_not = function Zero -> One | One -> Zero | Both -> Both

let v_and a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> Both

let v_or a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> Both

let v_xor a b =
  match (a, b) with
  | Both, _ | _, Both -> Both
  | a, b -> if a = b then Zero else One

let rec eval ~inputs ~regs = function
  | Expr.Const b -> of_bool b
  | Expr.Input i -> inputs i
  | Expr.Reg r -> regs r
  | Expr.Not e -> v_not (eval ~inputs ~regs e)
  | Expr.And (a, b) -> v_and (eval ~inputs ~regs a) (eval ~inputs ~regs b)
  | Expr.Or (a, b) -> v_or (eval ~inputs ~regs a) (eval ~inputs ~regs b)
  | Expr.Xor (a, b) -> v_xor (eval ~inputs ~regs a) (eval ~inputs ~regs b)
  | Expr.Mux (s, h, l) -> (
      match eval ~inputs ~regs s with
      | One -> eval ~inputs ~regs h
      | Zero -> eval ~inputs ~regs l
      | Both -> join (eval ~inputs ~regs h) (eval ~inputs ~regs l))

type result = {
  reg_values : value array;
  output_values : value array;
  constraint_value : value;
  sweeps : int;
}

let analyze ?(budget = Budget.unlimited) (c : Circuit.t) =
  let nr = Circuit.n_regs c in
  let reg_values = Array.map (fun (r : Circuit.reg) -> of_bool r.Circuit.init) c.Circuit.regs in
  let inputs _ = Both in
  let regs r = reg_values.(r) in
  let sweeps = ref 0 in
  let changed = ref true in
  while !changed do
    Budget.step budget;
    incr sweeps;
    changed := false;
    for r = 0 to nr - 1 do
      let next = eval ~inputs ~regs c.Circuit.regs.(r).Circuit.next in
      let joined = join reg_values.(r) next in
      if joined <> reg_values.(r) then begin
        reg_values.(r) <- joined;
        changed := true
      end
    done
  done;
  {
    reg_values;
    output_values =
      Array.map (fun (o : Circuit.port) -> eval ~inputs ~regs o.Circuit.expr) c.Circuit.outputs;
    constraint_value = eval ~inputs ~regs c.Circuit.input_constraint;
    sweeps = !sweeps;
  }

(* [mux sel update self] / [mux sel self update] hold patterns: the
   enable expression that must pulse for the register to take a new
   value. *)
let hold_enable r next =
  match next with
  | Expr.Mux (sel, _, Expr.Reg r') when r' = r -> Some sel
  | Expr.Mux (sel, Expr.Reg r', _) when r' = r -> Some (Expr.( !! ) sel)
  | _ -> None

let check ?(budget = Budget.unlimited) (c : Circuit.t) =
  let res = analyze ~budget c in
  let inputs _ = Both in
  let regs r = res.reg_values.(r) in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* SA203/SA204: hold-pattern enables, evaluated at the fixpoint *)
  let has_sa203 = Array.make (Circuit.n_regs c) false in
  Array.iteri
    (fun r (rg : Circuit.reg) ->
      match hold_enable r rg.Circuit.next with
      | None -> ()
      | Some en -> (
          match eval ~inputs ~regs en with
          | Zero ->
              has_sa203.(r) <- true;
              add
                (Diag.make ~code:"SA203" ~severity:Diag.Warning ~pass:"ternary-const"
                   ~loc:(Diag.Register rg.Circuit.name)
                   (Printf.sprintf
                      "update never enabled: the hold-mux select is constant 0, so \
                       '%s' keeps its reset value %s forever"
                      rg.Circuit.name
                      (to_string (of_bool rg.Circuit.init))))
          | One ->
              add
                (Diag.make ~code:"SA204" ~severity:Diag.Info ~pass:"ternary-const"
                   ~loc:(Diag.Register rg.Circuit.name)
                   "hold mux is degenerate: the update is always enabled, the hold \
                    arm is dead logic")
          | Both -> ()))
    c.Circuit.regs;
  (* SA201: stuck registers (unless the more specific SA203 already
     explains why) *)
  Array.iteri
    (fun r (rg : Circuit.reg) ->
      match res.reg_values.(r) with
      | Both -> ()
      | (Zero | One) as v ->
          if not has_sa203.(r) then
            add
              (Diag.make ~code:"SA201" ~severity:Diag.Warning ~pass:"ternary-const"
                 ~loc:(Diag.Register rg.Circuit.name)
                 (Printf.sprintf
                    "stuck at %s: no input sequence ever moves '%s' off its reset \
                     value (the stuck-at-%s fault here is untestable)"
                    (to_string v) rg.Circuit.name (to_string v))))
    c.Circuit.regs;
  (* SA202: constant outputs *)
  Array.iteri
    (fun o (p : Circuit.port) ->
      match res.output_values.(o) with
      | Both -> ()
      | (Zero | One) as v ->
          add
            (Diag.make ~code:"SA202" ~severity:Diag.Warning ~pass:"ternary-const"
               ~loc:(Diag.Output_port p.Circuit.port_name)
               (Printf.sprintf "output is constant %s under 0/1/X propagation"
                  (to_string v))))
    c.Circuit.outputs;
  (* SA205: unsatisfiable input constraint *)
  (match res.constraint_value with
  | Zero ->
      add
        (Diag.make ~code:"SA205" ~severity:Diag.Error ~pass:"ternary-const"
           ~loc:Diag.Whole_circuit
           "input constraint is constant false: no input combination is ever \
            valid, every simulation step is rejected")
  | One | Both -> ());
  List.rev !diags
