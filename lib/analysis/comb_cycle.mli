(** Combinational-loop detection (pass [comb-cycle], code [SA101]).

    Runs {!Simcov_graph.Scc} over the combinational dependency graph of
    a {!Netgraph.t} (latch drivers cut the graph, so register feedback
    is fine). Every strongly connected component of two or more nets —
    or a net with a combinational self-edge — is a combinational cycle:
    unclocked feedback whose fixpoint semantics the simulator and the
    symbolic engine both reject. Each cycle is reported once, with a
    concrete net path.

    Circuits lowered by {!Netgraph.of_circuit} are loop-free by
    construction (expressions are trees over registered leaves); the
    pass guards hand-built graphs, deserialized descriptions from
    future front ends, and regressions in the lowering itself. *)

val check_graph : Netgraph.t -> Diag.t list
(** Diagnostics for every combinational cycle in the graph. *)

val check : Simcov_netlist.Circuit.t -> Diag.t list
(** [check_graph] over the lowered circuit. *)
