open Simcov_fsm
module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Rng = Simcov_util.Rng
module Digraph = Simcov_graph.Digraph
module Scc = Simcov_graph.Scc
module Fault = Simcov_coverage.Fault
module Detect = Simcov_coverage.Detect
module Tour = Simcov_testgen.Tour

type stats = {
  n_states : int;
  n_reachable : int;
  n_inputs : int;
  n_transitions : int;
  n_classes : int;
  n_sccs : int;
  certified_k : int option;
}

type suite_report = {
  n_words : int;
  suite_states : int;
  suite_transitions : int;
  redundant : int list;
  missed : (int * int) list;
}

type report = {
  name : string;
  stats : stats;
  passes : string list;
  skipped : string list;
  diags : Diag.t list;
  suite : suite_report option;
  truncated : Budget.resource option;
}

(* how many per-instance diagnostics a single check emits before
   folding the rest into one summary line *)
let cap = 8

let word_name (m : Fsm.t) word =
  String.concat " " (List.map m.Fsm.input_name word)

let trans_name (m : Fsm.t) s i =
  Printf.sprintf "%s -%s->" (m.Fsm.state_name s) (m.Fsm.input_name i)

(* ---- well-formed ---- *)

let check_well_formed (m : Fsm.t) seen =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let mk = Diag.make ~pass:"well-formed" in
  (* unreachable states (capped) *)
  let unreachable = ref [] in
  for s = m.Fsm.n_states - 1 downto 0 do
    if not seen.(s) then unreachable := s :: !unreachable
  done;
  let n_unreach = List.length !unreachable in
  List.iteri
    (fun idx s ->
      if idx < cap then
        add
          (mk ~code:"SA602" ~severity:Diag.Warning
             ~loc:(Diag.State (m.Fsm.state_name s))
             "state is unreachable from reset"))
    !unreachable;
  if n_unreach > cap then
    add
      (mk ~code:"SA602" ~severity:Diag.Warning ~loc:Diag.Whole_circuit
         (Printf.sprintf "%d more states are unreachable from reset" (n_unreach - cap)));
  (* dead ends, range errors, dead inputs, partiality over the
     reachable sub-machine *)
  let input_live = Array.make m.Fsm.n_inputs false in
  let invalid_pairs = ref 0 and valid_pairs = ref 0 in
  let range_errs = ref 0 in
  for s = 0 to m.Fsm.n_states - 1 do
    if seen.(s) then begin
      let any_valid = ref false in
      for i = 0 to m.Fsm.n_inputs - 1 do
        if m.Fsm.valid s i then begin
          any_valid := true;
          input_live.(i) <- true;
          incr valid_pairs;
          let n = m.Fsm.next s i and o = m.Fsm.output s i in
          if n < 0 || n >= m.Fsm.n_states || o < 0 then begin
            incr range_errs;
            if !range_errs <= cap then
              add
                (mk ~code:"SA604" ~severity:Diag.Error
                   ~loc:(Diag.State (m.Fsm.state_name s))
                   ~related:[ m.Fsm.input_name i ]
                   (Printf.sprintf
                      "transition %s targets out-of-range %s (next=%d, output=%d, \
                       n_states=%d)"
                      (trans_name m s i)
                      (if n < 0 || n >= m.Fsm.n_states then "state" else "output")
                      n o m.Fsm.n_states))
          end
        end
        else incr invalid_pairs
      done;
      if not !any_valid then
        add
          (mk ~code:"SA601" ~severity:Diag.Error
             ~loc:(Diag.State (m.Fsm.state_name s))
             "reachable state accepts no valid input: every word reaching it dies \
              here, so no closed tour exists")
    end
  done;
  if !range_errs > cap then
    add
      (mk ~code:"SA604" ~severity:Diag.Error ~loc:Diag.Whole_circuit
         (Printf.sprintf "%d more out-of-range transitions" (!range_errs - cap)));
  let dead_inputs = ref 0 in
  for i = 0 to m.Fsm.n_inputs - 1 do
    if not input_live.(i) then begin
      incr dead_inputs;
      if !dead_inputs <= cap then
        add
          (mk ~code:"SA603" ~severity:Diag.Warning
             ~loc:(Diag.Input_symbol (m.Fsm.input_name i))
             "input symbol is never valid in any reachable state")
    end
  done;
  if !dead_inputs > cap then
    add
      (mk ~code:"SA603" ~severity:Diag.Warning ~loc:Diag.Whole_circuit
         (Printf.sprintf
            "%d more input symbols are never valid in any reachable state (a \
             heavily constrained alphabet: %d of %d symbols are dead)"
            (!dead_inputs - cap) !dead_inputs m.Fsm.n_inputs));
  if !invalid_pairs > 0 then
    add
      (mk ~code:"SA605" ~severity:Diag.Info ~loc:Diag.Whole_circuit
         (Printf.sprintf
            "machine is partially specified: %d of %d reachable (state, input) \
             pairs are invalid"
            !invalid_pairs
            (!invalid_pairs + !valid_pairs)));
  List.rev !diags

(* ---- connectivity ---- *)

(* the reachable transition graph on densely renumbered vertices: SCC
   analysis must not see unreachable states as isolated components *)
let reachable_digraph (m : Fsm.t) seen =
  let idx = Array.make m.Fsm.n_states (-1) in
  let n = ref 0 in
  for s = 0 to m.Fsm.n_states - 1 do
    if seen.(s) then begin
      idx.(s) <- !n;
      incr n
    end
  done;
  let back = Array.make !n 0 in
  for s = 0 to m.Fsm.n_states - 1 do
    if seen.(s) then back.(idx.(s)) <- s
  done;
  let g = Digraph.create !n in
  for s = 0 to m.Fsm.n_states - 1 do
    if seen.(s) then
      List.iter
        (fun i ->
          let d = m.Fsm.next s i in
          if d >= 0 && d < m.Fsm.n_states && seen.(d) then
            ignore (Digraph.add_edge g ~src:idx.(s) ~dst:idx.(d) ~label:i ~cost:1))
        (Fsm.valid_inputs m s)
  done;
  (g, idx, back)

let check_connectivity (m : Fsm.t) seen =
  let g, _idx, back = reachable_digraph m seen in
  let comp, k, cross = Scc.condensation g in
  if k <= 1 then ([], k)
  else begin
    (* witness: one representative concrete edge per condensation cut.
       Since the condensation is a DAG, each cross edge (a, b) has no
       return path b -> a: that missing direction is the cut. *)
    let rep = Hashtbl.create 16 in
    Digraph.iter_edges
      (fun e ->
        let a = comp.(e.Digraph.src) and b = comp.(e.Digraph.dst) in
        if a <> b && not (Hashtbl.mem rep (a, b)) then
          Hashtbl.add rep (a, b)
            (Printf.sprintf "%s %s (no way back)"
               (trans_name m back.(e.Digraph.src) e.Digraph.label)
               (m.Fsm.state_name back.(e.Digraph.dst))))
      g;
    let related =
      List.filteri (fun i _ -> i < cap) cross
      |> List.filter_map (fun ab -> Hashtbl.find_opt rep ab)
    in
    let size = Array.make k 0 in
    Array.iter (fun c -> size.(c) <- size.(c) + 1) comp;
    let largest = Array.fold_left max 0 size in
    ( [
        Diag.make ~code:"SA610" ~severity:Diag.Error ~pass:"connectivity"
          ~loc:Diag.Whole_circuit ~related
          (Printf.sprintf
             "reachable transition graph is not strongly connected: %d SCCs \
              (largest %d of %d states), so no closed transition tour exists; \
              the listed one-way condensation edges are the cuts"
             k largest (Digraph.n_vertices g));
      ],
      k )
  end

(* ---- minimality ---- *)

(* shortest word driving two equivalent states to one common state —
   the concrete "these really are the same state" witness (outputs
   agree along the way by equivalence) *)
let merge_word (m : Fsm.t) s t =
  let visited = Hashtbl.create 64 in
  let q = Queue.create () in
  Queue.add (s, t, []) q;
  Hashtbl.add visited (s, t) ();
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let a, b, w = Queue.pop q in
    if a = b then result := Some (List.rev w)
    else
      List.iter
        (fun i ->
          if m.Fsm.valid b i then begin
            let a' = m.Fsm.next a i and b' = m.Fsm.next b i in
            if not (Hashtbl.mem visited (a', b')) then begin
              Hashtbl.add visited (a', b') ();
              Queue.add (a', b', i :: w) q
            end
          end)
        (Fsm.valid_inputs m a)
  done;
  !result

let check_minimality (m : Fsm.t) classes seen =
  let groups = Hashtbl.create 16 in
  for s = m.Fsm.n_states - 1 downto 0 do
    if seen.(s) && classes.(s) >= 0 then
      Hashtbl.replace groups classes.(s)
        (s :: (Option.value ~default:[] (Hashtbl.find_opt groups classes.(s))))
  done;
  let diags = ref [] and n_pairs = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      match members with
      | rep :: (_ :: _ as rest) ->
          List.iter
            (fun s ->
              incr n_pairs;
              if !n_pairs <= cap then begin
                let witness =
                  match merge_word m rep s with
                  | Some w ->
                      Printf.sprintf "word '%s' drives both to state %s"
                        (word_name m w)
                        (m.Fsm.state_name (Fsm.final_state { m with Fsm.reset = rep } w))
                  | None -> "their output behaviors agree on every word"
                in
                diags :=
                  Diag.make ~code:"SA620" ~severity:Diag.Error ~pass:"minimality"
                    ~loc:(Diag.State (m.Fsm.state_name rep))
                    ~related:[ m.Fsm.state_name s ]
                    (Printf.sprintf
                       "states %s and %s are equivalent (machine is not minimal; \
                        tour completeness arguments do not apply): %s"
                       (m.Fsm.state_name rep) (m.Fsm.state_name s) witness)
                  :: !diags
              end)
            rest
      | _ -> ())
    groups;
  let diags = List.rev !diags in
  if !n_pairs > cap then
    diags
    @ [
        Diag.make ~code:"SA620" ~severity:Diag.Error ~pass:"minimality"
          ~loc:Diag.Whole_circuit
          (Printf.sprintf "%d more equivalent state pairs" (!n_pairs - cap));
      ]
  else diags

(* ---- ∀k-distinguishability ---- *)

(* a length-k word valid from both states whose outputs agree
   throughout — the mask that defeats ∀k-distinguishability *)
let masking_word (m : Fsm.t) ~k s t =
  let visited = Hashtbl.create 64 in
  let rec go a b depth w =
    if depth = k then Some (List.rev w)
    else if Hashtbl.mem visited (a, b, depth) then None
    else begin
      Hashtbl.add visited (a, b, depth) ();
      List.fold_left
        (fun acc i ->
          match acc with
          | Some _ -> acc
          | None ->
              if m.Fsm.valid b i && m.Fsm.output a i = m.Fsm.output b i then
                go (m.Fsm.next a i) (m.Fsm.next b i) (depth + 1) (i :: w)
              else None)
        None (Fsm.valid_inputs m a)
    end
  in
  go s t 0 []

let check_distinguishability (m : Fsm.t) seen ~k_bound =
  match Fsm.min_forall_k ~bound:k_bound m with
  | Some k ->
      ( [
          Diag.make ~code:"SA630" ~severity:Diag.Info ~pass:"distinguishability"
            ~loc:Diag.Whole_circuit
            (Printf.sprintf
               "every reachable state pair is forall-%d-distinguishable (Definition \
                5): a tour padded by %d step%s exposes every excited error in the \
                fault class"
               k k
               (if k = 1 then "" else "s"));
        ],
        Some k )
  | None ->
      (* name one offending pair and its masking word at the bound *)
      let matrix = Fsm.forall_k_matrix m ~k:k_bound in
      let offender = ref None in
      for s = 0 to m.Fsm.n_states - 1 do
        for t = s + 1 to m.Fsm.n_states - 1 do
          if !offender = None && seen.(s) && seen.(t) && not matrix.(s).(t) then
            offender := Some (s, t)
        done
      done;
      let diag =
        match !offender with
        | Some (s, t) ->
            let related =
              match masking_word m ~k:k_bound s t with
              | Some w -> [ word_name m w ]
              | None -> []
            in
            Diag.make ~code:"SA631" ~severity:Diag.Error ~pass:"distinguishability"
              ~loc:(Diag.State (m.Fsm.state_name s))
              ~related:(m.Fsm.state_name t :: related)
              (Printf.sprintf
                 "states %s and %s are not forall-%d-distinguishable: the related \
                  word masks the difference, so an error transferring between them \
                  can survive a tour padded by %d steps"
                 (m.Fsm.state_name s) (m.Fsm.state_name t) k_bound k_bound)
        | None ->
            (* minimal machine, no pair fails at the bound itself: the
               bound was too small to certify a uniform k *)
            Diag.make ~code:"SA631" ~severity:Diag.Error ~pass:"distinguishability"
              ~loc:Diag.Whole_circuit
              (Printf.sprintf
                 "no uniform k <= %d makes every reachable pair \
                  forall-k-distinguishable; raise the analysis bound"
                 k_bound)
      in
      ([ diag ], None)

(* ---- fault-structural (Requirements 1 and 4) ---- *)

(* Theorem 1's test is the tour padded by k extra steps (the exposure
   window): replaying faults against the unpadded word would flag
   every fault excited within k steps of the end as masked *)
let pad_word (m : Fsm.t) word ~k =
  let s = ref (Fsm.final_state m word) in
  let pad = ref [] in
  (try
     for _ = 1 to k do
       match Fsm.valid_inputs m !s with
       | i :: _ ->
           pad := i :: !pad;
           s := m.Fsm.next !s i
       | [] -> raise Exit
     done
   with Exit -> ());
  word @ List.rev !pad

let check_fault_structural (m : Fsm.t) rng tour ~k =
  let word = pad_word m tour.Tour.word ~k in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let transitions = Fsm.transitions m in
  (* R1: non-uniform output errors (Definition 2 fails). A
     Conditional_output fault at site (s, i) conditioned on
     predecessor transition p fires only when the tour traverses
     (s, i) immediately after p. The check is purely structural: one
     replay of the tour collects, per site, the set of predecessor
     contexts actually exercised; any graph predecessor outside that
     set is a concrete escaping fault — no per-fault simulation
     needed. *)
  let contexts = Hashtbl.create 256 in
  (* (site, prev) pairs the tour exercises *)
  let prev = ref None in
  let s = ref m.Fsm.reset in
  List.iter
    (fun i ->
      if m.Fsm.valid !s i then begin
        (match !prev with
        | Some p -> Hashtbl.replace contexts ((!s, i), p) ()
        | None -> ());
        prev := Some (!s, i);
        s := m.Fsm.next !s i
      end)
    word;
  let incoming = Hashtbl.create 64 in
  List.iter
    (fun (s, i, s', _) ->
      Hashtbl.replace incoming s'
        ((s, i) :: (Option.value ~default:[] (Hashtbl.find_opt incoming s'))))
    transitions;
  let r1 = ref 0 and sites = ref 0 and example = ref None in
  List.iter
    (fun (s, i, _, o) ->
      let preds = Option.value ~default:[] (Hashtbl.find_opt incoming s) in
      if List.length preds >= 2 then begin
        let escaping =
          List.filter (fun p -> not (Hashtbl.mem contexts ((s, i), p))) preds
        in
        if escaping <> [] then begin
          incr sites;
          r1 := !r1 + List.length escaping;
          if !example = None then
            example := Some (s, i, o, List.hd escaping)
        end
      end)
    transitions;
  (match !example with
  | Some (s, i, o, p) when !r1 > 0 ->
      let fault =
        Fault.Conditional_output { state = s; input = i; wrong_output = o + 1; prev = p }
      in
      (* sanity: the static claim agrees with lockstep simulation *)
      let escapes =
        (not (Fault.is_effective m fault)) || not (Detect.detects m fault word)
      in
      add
        (Diag.make ~code:"SA640" ~severity:Diag.Warning ~pass:"fault-structural"
           ~loc:(Diag.State (m.Fsm.state_name s))
           ~related:[ Format.asprintf "%a" Fault.pp fault ]
           (Printf.sprintf
              "%d non-uniform output error%s at %d site%s escape%s the \
               transition tour (Requirement 1): e.g. an error on %s firing \
               only after %s is never excited — the tour takes that \
               transition after a different predecessor%s"
              !r1
              (if !r1 = 1 then "" else "s")
              !sites
              (if !sites = 1 then "" else "s")
              (if !r1 = 1 then "s" else "")
              (trans_name m s i)
              (trans_name m (fst p) (snd p))
              (if escapes then "" else " (exposed elsewhere on this tour)")))
  | _ -> ());
  (* R4: masked transfer errors on the tour *)
  let n_pop = List.length transitions * max 0 (Fsm.n_reachable m - 1) in
  let faults =
    if n_pop <= 2000 then Fault.all_transfer_faults m
    else Fault.sample_transfer_faults rng m ~count:200
  in
  let r4 = ref 0 in
  List.iter
    (fun fault ->
      match fault with
      | Fault.Transfer { state = s; input = i; wrong_next } ->
          let v = Detect.run_verdict m fault word in
          if v.Detect.excited && not v.Detect.detected then begin
            incr r4;
            if !r4 <= cap then begin
              let window =
                match Detect.masked_windows m (Fault.apply m fault) word with
                | (j, l) :: _ ->
                    Printf.sprintf "masked over tour steps %d..%d" j l
                | [] -> "never exposed before the tour ends"
              in
              add
                (Diag.make ~code:"SA641" ~severity:Diag.Warning
                   ~pass:"fault-structural"
                   ~loc:(Diag.State (m.Fsm.state_name s))
                   ~related:[ Format.asprintf "%a" Fault.pp fault ]
                   (Printf.sprintf
                      "transfer error %s to %s is excited but %s: Requirement 4 \
                       (no masked transfer errors) does not hold on this tour"
                      (trans_name m s i)
                      (m.Fsm.state_name wrong_next)
                      window))
            end
          end
      | _ -> ())
    faults;
  if !r4 > cap then
    add
      (Diag.make ~code:"SA641" ~severity:Diag.Warning ~pass:"fault-structural"
         ~loc:Diag.Whole_circuit
         (Printf.sprintf "%d more masked transfer errors" (!r4 - cap)));
  List.rev !diags

(* ---- suite-cover ---- *)

(* static prediction by graph walk: no lockstep fault simulation, just
   the transition function. Matches Detect.transitions_covered's
   semantics (coverage counts the prefix before the first invalid
   input), with the invalid step additionally diagnosed. *)
let check_suite (m : Fsm.t) words =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let covered = Hashtbl.create 256 in
  let states = Hashtbl.create 64 in
  Hashtbl.replace states m.Fsm.reset ();
  let redundant = ref [] in
  List.iteri
    (fun wi word ->
      let s = ref m.Fsm.reset in
      let fresh = ref 0 and pos = ref 0 and stopped = ref false in
      List.iter
        (fun i ->
          if not !stopped then begin
            if i < 0 || i >= m.Fsm.n_inputs || not (m.Fsm.valid !s i) then begin
              stopped := true;
              add
                (Diag.make ~code:"SA650" ~severity:Diag.Error ~pass:"suite-cover"
                   ~loc:(Diag.Word (word_name m word))
                   ~related:[ m.Fsm.state_name !s ]
                   (Printf.sprintf
                      "word %d applies input %s at position %d, invalid in state \
                       %s: the rest of the word cannot execute"
                      wi
                      (if i >= 0 && i < m.Fsm.n_inputs then m.Fsm.input_name i
                       else string_of_int i)
                      !pos (m.Fsm.state_name !s)))
            end
            else begin
              if not (Hashtbl.mem covered (!s, i)) then begin
                Hashtbl.replace covered (!s, i) ();
                incr fresh
              end;
              s := m.Fsm.next !s i;
              Hashtbl.replace states !s ();
              incr pos
            end
          end)
        word;
      if !fresh = 0 && not !stopped then begin
        redundant := wi :: !redundant;
        add
          (Diag.make ~code:"SA652" ~severity:Diag.Info ~pass:"suite-cover"
             ~loc:(Diag.Word (word_name m word))
             (Printf.sprintf
                "word %d covers no transition not already covered by earlier words"
                wi))
      end)
    words;
  let missed =
    List.filter_map
      (fun (s, i, _, _) -> if Hashtbl.mem covered (s, i) then None else Some (s, i))
      (Fsm.transitions m)
  in
  if missed <> [] then begin
    let related =
      List.filteri (fun i _ -> i < cap) missed
      |> List.map (fun (s, i) -> trans_name m s i)
    in
    add
      (Diag.make ~code:"SA651" ~severity:Diag.Warning ~pass:"suite-cover"
         ~loc:Diag.Whole_circuit ~related
         (Printf.sprintf
            "suite misses %d of %d reachable transitions: predicted coverage %.1f%%"
            (List.length missed)
            (Fsm.n_transitions m)
            (100.0
            *. float_of_int (Hashtbl.length covered)
            /. float_of_int (max 1 (Fsm.n_transitions m)))))
  end;
  ( List.rev !diags,
    {
      n_words = List.length words;
      suite_states = Hashtbl.length states;
      suite_transitions = Hashtbl.length covered;
      redundant = List.rev !redundant;
      missed;
    } )

(* ---- orchestration ---- *)

let run ?(budget = Budget.unlimited) ?(name = "fsm") ?(k_bound = 8) ?(seed = 7)
    ?suite (m : Fsm.t) =
  let diags = ref [] and passes = ref [] and skipped = ref [] in
  let truncated = ref None in
  let pass id f =
    if !truncated <> None then skipped := id :: !skipped
    else
      try
        Budget.step budget;
        passes := id :: !passes;
        diags := !diags @ f ()
      with Budget.Budget_exceeded r ->
        truncated := Some r;
        (match !passes with p :: rest when p = id -> passes := rest | _ -> ());
        skipped := id :: !skipped
  in
  let seen = Fsm.reachable m in
  let n_sccs = ref 1 in
  let certified_k = ref None in
  let classes = ref [||] in
  let n_classes = ref 0 in
  let suite_out = ref None in
  pass "well-formed" (fun () -> check_well_formed m seen);
  let malformed = List.exists (fun d -> d.Diag.code = "SA604") !diags in
  if not malformed then begin
    pass "connectivity" (fun () ->
        let ds, k = check_connectivity m seen in
        n_sccs := k;
        ds);
    pass "minimality" (fun () ->
        let _, cls = Fsm.minimize m in
        classes := cls;
        let reps = Hashtbl.create 16 in
        Array.iter (fun c -> if c >= 0 then Hashtbl.replace reps c ()) cls;
        n_classes := Hashtbl.length reps;
        check_minimality m cls seen);
    let minimal = not (List.exists (fun d -> d.Diag.code = "SA620") !diags) in
    if minimal then
      pass "distinguishability" (fun () ->
          let ds, k = check_distinguishability m seen ~k_bound in
          certified_k := k;
          ds)
    else
      (* equivalent pairs defeat ∀k for every k: SA620 already says so;
         a masking-word witness per pair would be noise *)
      skipped := "distinguishability" :: !skipped;
    (match Tour.transition_tour m with
    | Some tour ->
        pass "fault-structural" (fun () ->
            let k = Option.value ~default:1 !certified_k in
            check_fault_structural m (Rng.create seed) tour ~k)
    | None ->
        (* no tour to replay faults on; SA610/SA601 carry the reason *)
        skipped := "fault-structural" :: !skipped);
    match suite with
    | None -> ()
    | Some words ->
        pass "suite-cover" (fun () ->
            let ds, sr = check_suite m words in
            suite_out := Some sr;
            ds)
  end;
  let order id =
    match id with
    | "well-formed" -> 0
    | "connectivity" -> 1
    | "minimality" -> 2
    | "distinguishability" -> 3
    | "fault-structural" -> 4
    | "suite-cover" -> 5
    | _ -> 6
  in
  let by_order l = List.sort (fun a b -> Int.compare (order a) (order b)) l in
  let passes = by_order (List.sort_uniq compare !passes) in
  let skipped =
    by_order
      (List.sort_uniq compare !skipped
      |> List.filter (fun s -> not (List.mem s passes)))
  in
  {
    name;
    stats =
      {
        n_states = m.Fsm.n_states;
        n_reachable = Fsm.n_reachable m;
        n_inputs = m.Fsm.n_inputs;
        n_transitions = Fsm.n_transitions m;
        n_classes = !n_classes;
        n_sccs = !n_sccs;
        certified_k = !certified_k;
      };
    passes;
    skipped;
    diags = List.sort Diag.compare !diags;
    suite = !suite_out;
    truncated = !truncated;
  }

let count r sev = List.length (List.filter (fun d -> d.Diag.severity = sev) r.diags)

let worst r =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when Diag.severity_rank s >= Diag.severity_rank d.Diag.severity -> acc
      | _ -> Some d.Diag.severity)
    None r.diags

let fails r ~threshold =
  match worst r with
  | None -> false
  | Some w -> Diag.severity_rank w >= Diag.severity_rank threshold

let schema_id = "simcov-fsmlint/1"

let suite_to_json s =
  Json.Obj
    [
      ("words", Json.Int s.n_words);
      ("states_covered", Json.Int s.suite_states);
      ("transitions_covered", Json.Int s.suite_transitions);
      ("redundant", Json.List (List.map (fun i -> Json.Int i) s.redundant));
      ( "missed",
        Json.List
          (List.map
             (fun (s, i) ->
               Json.Obj [ ("state", Json.Int s); ("input", Json.Int i) ])
             s.missed) );
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.String schema_id);
      ( "model",
        Json.Obj
          [
            ("name", Json.String r.name);
            ("states", Json.Int r.stats.n_states);
            ("reachable", Json.Int r.stats.n_reachable);
            ("inputs", Json.Int r.stats.n_inputs);
            ("transitions", Json.Int r.stats.n_transitions);
            ("classes", Json.Int r.stats.n_classes);
            ("sccs", Json.Int r.stats.n_sccs);
            ( "certified_k",
              match r.stats.certified_k with
              | None -> Json.Null
              | Some k -> Json.Int k );
          ] );
      ("passes", Json.List (List.map (fun p -> Json.String p) r.passes));
      ("skipped", Json.List (List.map (fun p -> Json.String p) r.skipped));
      ("diagnostics", Json.List (List.map Diag.to_json r.diags));
      ("suite", match r.suite with None -> Json.Null | Some s -> suite_to_json s);
      ( "truncated",
        match r.truncated with
        | None -> Json.Null
        | Some res -> Json.String (Budget.resource_name res) );
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "fsmlint report: missing or ill-typed '%s'" name)

let strings_of name j =
  let* items = field name Json.to_list j in
  List.fold_left
    (fun acc p ->
      let* acc = acc in
      match Json.to_string_opt p with
      | Some s -> Ok (s :: acc)
      | None -> Error (Printf.sprintf "fsmlint report: '%s' entry is not a string" name))
    (Ok []) items
  |> Result.map List.rev

let suite_of_json j =
  let* n_words = field "words" Json.to_int_opt j in
  let* suite_states = field "states_covered" Json.to_int_opt j in
  let* suite_transitions = field "transitions_covered" Json.to_int_opt j in
  let* red_js = field "redundant" Json.to_list j in
  let* redundant =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        match Json.to_int_opt x with
        | Some i -> Ok (i :: acc)
        | None -> Error "fsmlint report: redundant entry is not an int")
      (Ok []) red_js
    |> Result.map List.rev
  in
  let* missed_js = field "missed" Json.to_list j in
  let* missed =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* s = field "state" Json.to_int_opt x in
        let* i = field "input" Json.to_int_opt x in
        Ok ((s, i) :: acc))
      (Ok []) missed_js
    |> Result.map List.rev
  in
  Ok { n_words; suite_states; suite_transitions; redundant; missed }

let of_json j =
  let* schema = field "schema" Json.to_string_opt j in
  if schema <> schema_id then
    Error (Printf.sprintf "fsmlint report: unknown schema '%s'" schema)
  else
    let* model = field "model" Option.some j in
    let* name = field "name" Json.to_string_opt model in
    let* n_states = field "states" Json.to_int_opt model in
    let* n_reachable = field "reachable" Json.to_int_opt model in
    let* n_inputs = field "inputs" Json.to_int_opt model in
    let* n_transitions = field "transitions" Json.to_int_opt model in
    let* n_classes = field "classes" Json.to_int_opt model in
    let* n_sccs = field "sccs" Json.to_int_opt model in
    let* certified_k =
      match Json.member "certified_k" model with
      | None | Some Json.Null -> Ok None
      | Some x -> (
          match Json.to_int_opt x with
          | Some k -> Ok (Some k)
          | None -> Error "fsmlint report: ill-typed 'certified_k'")
    in
    let* passes = strings_of "passes" j in
    let* skipped = strings_of "skipped" j in
    let* diags_js = field "diagnostics" Json.to_list j in
    let* diags =
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* d = Diag.of_json d in
          Ok (d :: acc))
        (Ok []) diags_js
      |> Result.map List.rev
    in
    let* suite =
      match Json.member "suite" j with
      | None | Some Json.Null -> Ok None
      | Some s -> Result.map Option.some (suite_of_json s)
    in
    let* truncated =
      match Json.member "truncated" j with
      | None | Some Json.Null -> Ok None
      | Some (Json.String "time") -> Ok (Some Budget.Time)
      | Some (Json.String "steps") -> Ok (Some Budget.Steps)
      | Some (Json.String "nodes") -> Ok (Some Budget.Nodes)
      | Some _ -> Error "fsmlint report: ill-typed 'truncated'"
    in
    Ok
      {
        name;
        stats =
          { n_states; n_reachable; n_inputs; n_transitions; n_classes; n_sccs; certified_k };
        passes;
        skipped;
        diags;
        suite;
        truncated;
      }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>fsm-lint %s: %d states (%d reachable, %d classes), %d inputs, %d \
     transitions, %d SCC%s@,"
    r.name r.stats.n_states r.stats.n_reachable r.stats.n_classes r.stats.n_inputs
    r.stats.n_transitions r.stats.n_sccs
    (if r.stats.n_sccs = 1 then "" else "s");
  (match r.stats.certified_k with
  | Some k -> Format.fprintf fmt "certified: forall-%d-distinguishable@," k
  | None -> ());
  List.iter (fun d -> Format.fprintf fmt "%a@," Diag.pp d) r.diags;
  (match r.suite with
  | Some s ->
      Format.fprintf fmt
        "suite: %d words cover %d states, %d/%d transitions (%d redundant, %d \
         missed)@,"
        s.n_words s.suite_states s.suite_transitions r.stats.n_transitions
        (List.length s.redundant) (List.length s.missed)
  | None -> ());
  (match r.truncated with
  | Some res ->
      Format.fprintf fmt "analysis truncated: %s budget exhausted%s@,"
        (Budget.resource_name res)
        (if r.skipped = [] then ""
         else Printf.sprintf " (skipped: %s)" (String.concat ", " r.skipped))
  | None -> ());
  Format.fprintf fmt "%d error%s, %d warning%s, %d info@]"
    (count r Diag.Error)
    (if count r Diag.Error = 1 then "" else "s")
    (count r Diag.Warning)
    (if count r Diag.Warning = 1 then "" else "s")
    (count r Diag.Info)
