open Simcov_netlist
module Json = Simcov_util.Json

type hint = {
  reg_name : string;
  reg_index : int;
  group : string;
  feeds_constraint : bool;
  next_gates : int;
}

type analysis = {
  graph : Netgraph.t;
  map : Netgraph.circuit_map;
  observable : bool array;
  feeds_constraint : bool array;
}

let analyze_graph (g, m) =
  let observable = Netgraph.observable g in
  let feeds_constraint =
    match m.Netgraph.constraint_net with
    | None -> Array.make (Netgraph.n_nets g) false
    | Some root -> Netgraph.reaches g root
  in
  { graph = g; map = m; observable; feeds_constraint }

let analyze (c : Circuit.t) = analyze_graph (Netgraph.of_circuit c)

let hints_of (c : Circuit.t) { map = m; observable = obs; feeds_constraint = feeds; _ } =
  let acc = ref [] in
  Array.iteri
    (fun r (rg : Circuit.reg) ->
      let net = m.Netgraph.reg_net.(r) in
      if not obs.(net) then
        acc :=
          {
            reg_name = rg.Circuit.name;
            reg_index = r;
            group = rg.Circuit.group;
            feeds_constraint = feeds.(net);
            next_gates = Expr.size rg.Circuit.next;
          }
          :: !acc)
    c.Circuit.regs;
  List.rev !acc

let hints (c : Circuit.t) = hints_of c (analyze c)

let free_list hs = List.map (fun h -> h.reg_index) hs

let hint_to_json h =
  Json.Obj
    [
      ("register", Json.String h.reg_name);
      ("index", Json.Int h.reg_index);
      ("group", Json.String h.group);
      ("feeds_constraint", Json.Bool h.feeds_constraint);
      ("next_gates", Json.Int h.next_gates);
    ]

(* a gate net is dead when it can reach neither an output nor the
   input constraint (constraint logic shapes the valid input space, so
   it is not junk even though it is unobservable) *)
let count_dead_gates g obs feeds =
  let count = ref 0 in
  for net = 0 to Netgraph.n_nets g - 1 do
    if (not obs.(net)) && not feeds.(net) then
      if
        List.exists
          (fun (kind, _) ->
            match kind with Netgraph.Gate _ -> true | _ -> false)
          (Netgraph.drivers g net)
      then incr count
  done;
  !count

let dead_gate_count (c : Circuit.t) =
  let { graph = g; observable = obs; feeds_constraint = feeds; _ } = analyze c in
  count_dead_gates g obs feeds

let check_of (c : Circuit.t)
    { graph = g; map = m; observable = obs; feeds_constraint = feeds } =
  let diags = ref [] in
  Array.iteri
    (fun r (rg : Circuit.reg) ->
      let net = m.Netgraph.reg_net.(r) in
      if not obs.(net) then
        diags :=
          Diag.make ~code:"SA301" ~severity:Diag.Warning ~pass:"dead-logic"
            ~loc:(Diag.Register rg.Circuit.name)
            (Printf.sprintf
               "latch '%s' (group '%s') lies outside every primary-output cone%s \
                — a state element that cannot affect outputs; abstraction \
                candidate for Netabs.cone_reduce"
               rg.Circuit.name rg.Circuit.group
               (if feeds.(net) then
                  " (it does feed the input constraint, so removing it also \
                   relaxes input validity)"
                else ""))
          :: !diags)
    c.Circuit.regs;
  let dead_gates = count_dead_gates g obs feeds in
  if dead_gates > 0 then
    diags :=
      Diag.make ~code:"SA302" ~severity:Diag.Info ~pass:"dead-logic"
        ~loc:Diag.Whole_circuit
        (Printf.sprintf
           "%d distinct gate net%s lie%s outside every primary-output cone"
           dead_gates
           (if dead_gates = 1 then "" else "s")
           (if dead_gates = 1 then "s" else ""))
      :: !diags;
  List.rev !diags

let check (c : Circuit.t) = check_of c (analyze c)
