(** FSM-level static analysis: certify Theorem 1's preconditions
    before trusting a transition tour.

    The paper's completeness result (a transition tour detects every
    error in the model's fault class) is conditional on facts about the
    {e machine}: strong connectivity (a closed tour must exist),
    minimality (equivalent states void the state-counting argument),
    ∀k-distinguishability (Definition 5 — the exposure window that
    turns excitation into detection), uniform output errors
    (Definition 2 / Requirement 1) and the absence of masked transfer
    errors (Definition 4 / Requirement 4). Nothing in a coverage
    number says whether those hold; this pass suite checks them
    statically on the explicit Mealy machine and reports findings
    through the shared {!Diag} core under the [SA6xx] block:

    - [well-formed] — SA601 dead-end reachable state, SA602
      unreachable state, SA603 dead input symbol, SA604 out-of-range
      transition target, SA605 partial specification (Info).
      Determinism needs no check: {!Simcov_fsm.Fsm.t} is functional,
      hence deterministic by construction, and
      {!Simcov_fsm.Fsm.of_table} rejects duplicate rows.
    - [connectivity] — SA610 when the reachable transition graph is
      not strongly connected, with the SCC condensation cut edges as
      the witness (shared Tarjan via {!Simcov_graph.Scc}).
    - [minimality] — SA620 per equivalent state pair (partition
      refinement via {!Simcov_fsm.Fsm.minimize}), witnessed by a merge
      word driving both states to a common successor.
    - [distinguishability] — SA630 (Info) with the smallest [k] such
      that every reachable pair is ∀k-distinguishable, or SA631 naming
      an offending pair and a masking word of length [k_bound] on
      which their outputs agree.
    - [fault-structural] — SA640 when a non-uniform
      ({!Simcov_coverage.Fault.Conditional_output}) error escapes the
      transition tour (Requirement 1), SA641 when a transfer error is
      masked on the tour (Requirement 4, {e via}
      {!Simcov_coverage.Detect.masked_windows}); both carry concrete
      fault + word witnesses.
    - [suite-cover] — static prediction of state/transition coverage
      of a word list by graph walk (no fault simulation): SA650 word
      applies an invalid input, SA651 transitions missed by the whole
      suite, SA652 redundant word.

    The suite is budget-aware in the style of {!Lint}: passes that the
    budget cuts off are listed in {!report.skipped}, never silently
    absent. *)

open Simcov_fsm

type stats = {
  n_states : int;
  n_reachable : int;
  n_inputs : int;
  n_transitions : int;  (** reachable valid transitions *)
  n_classes : int;  (** equivalence classes over reachable states *)
  n_sccs : int;  (** SCCs of the reachable transition graph *)
  certified_k : int option;
      (** smallest [k] with every reachable pair ∀k-distinguishable;
          [None] when uncertified (non-minimal, bound exceeded, or the
          pass was skipped) *)
}

type suite_report = {
  n_words : int;
  suite_states : int;  (** states covered by the whole suite *)
  suite_transitions : int;  (** transitions covered by the whole suite *)
  redundant : int list;  (** 0-based indices of words adding no coverage *)
  missed : (int * int) list;  (** reachable (state, input) left uncovered *)
}

type report = {
  name : string;
  stats : stats;
  passes : string list;  (** pass ids run, in order *)
  skipped : string list;  (** pass ids scheduled but cut off by budget *)
  diags : Diag.t list;  (** sorted with {!Diag.compare} *)
  suite : suite_report option;  (** present iff a suite was analyzed *)
  truncated : Simcov_util.Budget.resource option;
}

val run :
  ?budget:Simcov_util.Budget.t ->
  ?name:string ->
  ?k_bound:int ->
  ?seed:int ->
  ?suite:int list list ->
  Fsm.t ->
  report
(** [run m] lints the machine. [k_bound] bounds the ∀k search
    (default 8, matching {!Simcov_core}'s certificate default). [seed]
    feeds the transfer-fault sample of the fault-structural pass when
    the population is too large to enumerate (default 7). [suite] is a
    list of input words to analyze with the suite-cover pass. *)

val count : report -> Diag.severity -> int
val worst : report -> Diag.severity option

val fails : report -> threshold:Diag.severity -> bool
(** Does any diagnostic reach [threshold]? (The [--fail-on] test.) *)

val schema_id : string
(** ["simcov-fsmlint/1"]. *)

val to_json : report -> Simcov_util.Json.t
(** Versioned schema: [schema], [model] stats (including
    [certified_k]), [passes], [skipped], [diagnostics], [suite]
    (object or [null]) and [truncated]. *)

val of_json : Simcov_util.Json.t -> (report, string) result
(** Inverse of {!to_json} (schema round-trip tests). *)

val pp : Format.formatter -> report -> unit
(** Human rendering: header with certification status, one line per
    diagnostic, suite summary, severity tally. *)
