open Simcov_netlist
module Budget = Simcov_util.Budget
module Json = Simcov_util.Json

type report = {
  name : string;
  n_inputs : int;
  n_regs : int;
  n_outputs : int;
  n_nets : int;
  passes : string list;
  skipped : string list;
  diags : Diag.t list;
  hints : Deadlogic.hint list;
  truncated : Budget.resource option;
}

let run ?(budget = Budget.unlimited) ?(name = "circuit") ?against (c : Circuit.t) =
  let diags = ref [] and passes = ref [] and hints = ref [] in
  let skipped = ref [] in
  let n_nets = ref 0 in
  let truncated = ref None in
  let pass id f =
    if !truncated <> None then skipped := id :: !skipped
    else
      try
        Budget.step budget;
        passes := id :: !passes;
        diags := !diags @ f ()
      with Budget.Budget_exceeded r ->
        (* this invocation did not complete: report it as skipped, not
           run (structural-lint runs twice, so drop only the head) *)
        truncated := Some r;
        (match !passes with p :: rest when p = id -> passes := rest | _ -> ());
        skipped := id :: !skipped
  in
  pass "structural-lint" (fun () -> Structural.check_circuit c);
  let malformed = List.exists (fun d -> d.Diag.code = "SA405") !diags in
  if not malformed then begin
    (* lower once; every graph-level pass shares it *)
    let lowered = ref None in
    let graph () =
      match !lowered with
      | Some gm -> gm
      | None ->
          let gm = Netgraph.of_circuit c in
          n_nets := Netgraph.n_nets (fst gm);
          lowered := Some gm;
          gm
    in
    pass "structural-lint" (fun () -> Structural.check_graph (fst (graph ())));
    pass "comb-cycle" (fun () -> Comb_cycle.check_graph (fst (graph ())));
    pass "ternary-const" (fun () -> Ternary.check ~budget c);
    pass "dead-logic" (fun () ->
        let a = Deadlogic.analyze_graph (graph ()) in
        hints := Deadlogic.hints_of c a;
        Deadlogic.check_of c a)
  end;
  (match against with
  | None -> ()
  | Some concrete ->
      pass "homo-precheck" (fun () ->
          Homo_precheck.check_circuits ~concrete ~abstract:c));
  (* structural-lint is stepped twice (circuit + graph level); list it once *)
  let passes = List.sort_uniq compare (List.rev !passes) in
  let skipped =
    (* a pass that partially ran stays in [passes]; don't double-list it *)
    List.sort_uniq compare (List.rev !skipped)
    |> List.filter (fun s -> not (List.mem s passes))
  in
  let order id =
    match id with
    | "structural-lint" -> 0
    | "comb-cycle" -> 1
    | "ternary-const" -> 2
    | "dead-logic" -> 3
    | _ -> 4
  in
  {
    name;
    n_inputs = Circuit.n_inputs c;
    n_regs = Circuit.n_regs c;
    n_outputs = Array.length c.Circuit.outputs;
    n_nets = !n_nets;
    passes = List.sort (fun a b -> Int.compare (order a) (order b)) passes;
    skipped = List.sort (fun a b -> Int.compare (order a) (order b)) skipped;
    diags = List.sort Diag.compare !diags;
    hints = !hints;
    truncated = !truncated;
  }

let count r sev = List.length (List.filter (fun d -> d.Diag.severity = sev) r.diags)

let worst r =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when Diag.severity_rank s >= Diag.severity_rank d.Diag.severity -> acc
      | _ -> Some d.Diag.severity)
    None r.diags

let fails r ~threshold =
  match worst r with
  | None -> false
  | Some w -> Diag.severity_rank w >= Diag.severity_rank threshold

let schema_id = "simcov-lint/1"

let to_json r =
  Json.Obj
    [
      ("schema", Json.String schema_id);
      ( "model",
        Json.Obj
          [
            ("name", Json.String r.name);
            ("inputs", Json.Int r.n_inputs);
            ("registers", Json.Int r.n_regs);
            ("outputs", Json.Int r.n_outputs);
            ("nets", Json.Int r.n_nets);
          ] );
      ("passes", Json.List (List.map (fun p -> Json.String p) r.passes));
      ("skipped", Json.List (List.map (fun p -> Json.String p) r.skipped));
      ("diagnostics", Json.List (List.map Diag.to_json r.diags));
      ("hints", Json.List (List.map Deadlogic.hint_to_json r.hints));
      ( "truncated",
        match r.truncated with
        | None -> Json.Null
        | Some res -> Json.String (Budget.resource_name res) );
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "lint report: missing or ill-typed '%s'" name)

let hint_of_json j =
  let* reg_name = field "register" Json.to_string_opt j in
  let* reg_index = field "index" Json.to_int_opt j in
  let* group = field "group" Json.to_string_opt j in
  let* feeds_constraint = field "feeds_constraint" Json.to_bool_opt j in
  let* next_gates = field "next_gates" Json.to_int_opt j in
  Ok { Deadlogic.reg_name; reg_index; group; feeds_constraint; next_gates }

let all_of parse js =
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      let* v = parse j in
      Ok (v :: acc))
    (Ok []) js
  |> Result.map List.rev

let of_json j =
  let* schema = field "schema" Json.to_string_opt j in
  if schema <> schema_id then
    Error (Printf.sprintf "lint report: unknown schema '%s'" schema)
  else
    let* model = field "model" Option.some j in
    let* name = field "name" Json.to_string_opt model in
    let* n_inputs = field "inputs" Json.to_int_opt model in
    let* n_regs = field "registers" Json.to_int_opt model in
    let* n_outputs = field "outputs" Json.to_int_opt model in
    let* n_nets = field "nets" Json.to_int_opt model in
    let* passes_js = field "passes" Json.to_list j in
    let* passes =
      all_of
        (fun p ->
          Option.to_result ~none:"lint report: pass must be a string"
            (Json.to_string_opt p))
        passes_js
    in
    let* skipped =
      match Json.member "skipped" j with
      | None -> Ok [] (* older reports predate the field *)
      | Some s -> (
          match Json.to_list s with
          | None -> Error "lint report: 'skipped' is not a list"
          | Some items ->
              all_of
                (fun p ->
                  Option.to_result ~none:"lint report: skipped pass must be a string"
                    (Json.to_string_opt p))
                items)
    in
    let* diags_js = field "diagnostics" Json.to_list j in
    let* diags = all_of Diag.of_json diags_js in
    let* hints_js = field "hints" Json.to_list j in
    let* hints = all_of hint_of_json hints_js in
    let* truncated =
      match Json.member "truncated" j with
      | None | Some Json.Null -> Ok None
      | Some (Json.String "time") -> Ok (Some Budget.Time)
      | Some (Json.String "steps") -> Ok (Some Budget.Steps)
      | Some (Json.String "nodes") -> Ok (Some Budget.Nodes)
      | Some _ -> Error "lint report: ill-typed 'truncated'"
    in
    Ok { name; n_inputs; n_regs; n_outputs; n_nets; passes; skipped; diags; hints; truncated }

let pp fmt r =
  Format.fprintf fmt "@[<v>lint %s: %d inputs, %d registers, %d outputs%s@,"
    r.name r.n_inputs r.n_regs r.n_outputs
    (if r.n_nets > 0 then Printf.sprintf ", %d nets" r.n_nets else "");
  List.iter (fun d -> Format.fprintf fmt "%a@," Diag.pp d) r.diags;
  List.iter
    (fun (h : Deadlogic.hint) ->
      Format.fprintf fmt "hint: latch '%s' (index %d, group '%s') is abstraction candidate%s@,"
        h.Deadlogic.reg_name h.Deadlogic.reg_index h.Deadlogic.group
        (if h.Deadlogic.feeds_constraint then " [feeds constraint]" else ""))
    r.hints;
  (match r.truncated with
  | Some res ->
      Format.fprintf fmt "analysis truncated: %s budget exhausted%s@,"
        (Budget.resource_name res)
        (if r.skipped = [] then ""
         else Printf.sprintf " (skipped: %s)" (String.concat ", " r.skipped))
  | None -> ());
  Format.fprintf fmt "%d error%s, %d warning%s, %d info@]"
    (count r Diag.Error)
    (if count r Diag.Error = 1 then "" else "s")
    (count r Diag.Warning)
    (if count r Diag.Warning = 1 then "" else "s")
    (count r Diag.Info)
