module Json = Simcov_util.Json

type severity = Info | Warning | Error

type location =
  | Register of string
  | Net of string
  | Primary_input of string
  | Output_port of string
  | Whole_circuit

type t = {
  code : string;
  severity : severity;
  pass : string;
  loc : location;
  message : string;
  related : string list;
}

let make ~code ~severity ~pass ~loc ?(related = []) message =
  { code; severity; pass; loc; message; related }

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_of_name = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let loc_kind = function
  | Register _ -> "register"
  | Net _ -> "net"
  | Primary_input _ -> "input"
  | Output_port _ -> "output"
  | Whole_circuit -> "circuit"

let loc_name = function
  | Register n | Net n | Primary_input n | Output_port n -> n
  | Whole_circuit -> ""

let compare a b =
  let c = Int.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare (loc_name a.loc) (loc_name b.loc) in
      if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s" (severity_name d.severity) d.code d.pass;
  (match d.loc with
  | Whole_circuit -> ()
  | loc -> Format.fprintf ppf " @@ %s '%s'" (loc_kind loc) (loc_name loc));
  Format.fprintf ppf ": %s" d.message;
  if d.related <> [] then
    Format.fprintf ppf " (via: %s)" (String.concat " -> " d.related)

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_name d.severity));
      ("pass", Json.String d.pass);
      ( "location",
        Json.Obj
          [
            ("kind", Json.String (loc_kind d.loc));
            ("name", Json.String (loc_name d.loc));
          ] );
      ("message", Json.String d.message);
      ("related", Json.List (List.map (fun s -> Json.String s) d.related));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let str field =
    match Option.bind (Json.member field j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "diagnostic: missing string field %S" field)
  in
  let* code = str "code" in
  let* sev_s = str "severity" in
  let* severity =
    match severity_of_name sev_s with
    | Some s -> Ok s
    | None -> Error ("diagnostic: bad severity " ^ sev_s)
  in
  let* pass = str "pass" in
  let* message = str "message" in
  let* loc =
    match Json.member "location" j with
    | None -> Error "diagnostic: missing location"
    | Some l -> (
        let kind = Option.bind (Json.member "kind" l) Json.to_string_opt in
        let name = Option.bind (Json.member "name" l) Json.to_string_opt in
        match (kind, name) with
        | Some "register", Some n -> Ok (Register n)
        | Some "net", Some n -> Ok (Net n)
        | Some "input", Some n -> Ok (Primary_input n)
        | Some "output", Some n -> Ok (Output_port n)
        | Some "circuit", _ -> Ok Whole_circuit
        | _ -> Error "diagnostic: bad location")
  in
  let* related =
    match Json.member "related" j with
    | None -> Ok []
    | Some r -> (
        match Json.to_list r with
        | None -> Error "diagnostic: related is not a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Json.to_string_opt item with
                | Some s -> Ok (s :: acc)
                | None -> Error "diagnostic: related entry is not a string")
              (Ok []) items
            |> Result.map List.rev)
  in
  Ok { code; severity; pass; loc; message; related }

let catalog =
  [
    ("SA101", Error, "combinational cycle through gate-level nets");
    ("SA201", Warning, "register stuck at a constant (never leaves its reset value)");
    ("SA202", Warning, "output port is constant under ternary propagation");
    ("SA203", Warning, "register update is never enabled (hold mux select is constant)");
    ("SA204", Info, "register hold mux is degenerate (update always enabled)");
    ("SA205", Error, "input constraint is constant false (no valid input ever)");
    ("SA301", Warning, "latch outside every primary-output cone (abstraction candidate)");
    ("SA302", Info, "gates outside every primary-output cone");
    ("SA401", Error, "floating net (read or observed but never driven)");
    ("SA402", Error, "multiply-driven net");
    ("SA403", Warning, "unused primary input");
    ("SA404", Error, "duplicate declaration name");
    ("SA405", Error, "expression references an out-of-range input/register index");
    ("SA406", Warning, "indexed net family has gaps or duplicate indices");
    ("SA501", Error, "homomorphism map image out of range");
    ("SA502", Warning, "state map is not surjective onto the abstract states");
    ("SA503", Warning, "input map is not surjective onto the abstract inputs");
    ("SA504", Error, "merged states disagree on an abstract output (quotient cannot exist)");
    ("SA505", Warning, "abstract register depends on state its concrete counterpart does not");
  ]
