module Json = Simcov_util.Json

type severity = Info | Warning | Error

type location =
  | Register of string
  | Net of string
  | Primary_input of string
  | Output_port of string
  | State of string
  | Input_symbol of string
  | Word of string
  | Whole_circuit

type t = {
  code : string;
  severity : severity;
  pass : string;
  loc : location;
  message : string;
  related : string list;
}

let make ~code ~severity ~pass ~loc ?(related = []) message =
  { code; severity; pass; loc; message; related }

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_of_name = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let loc_kind = function
  | Register _ -> "register"
  | Net _ -> "net"
  | Primary_input _ -> "input"
  | Output_port _ -> "output"
  | State _ -> "state"
  | Input_symbol _ -> "symbol"
  | Word _ -> "word"
  | Whole_circuit -> "circuit"

let loc_name = function
  | Register n | Net n | Primary_input n | Output_port n -> n
  | State n | Input_symbol n | Word n -> n
  | Whole_circuit -> ""

let compare a b =
  let c = Int.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare (loc_name a.loc) (loc_name b.loc) in
      if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s" (severity_name d.severity) d.code d.pass;
  (match d.loc with
  | Whole_circuit -> ()
  | loc -> Format.fprintf ppf " @@ %s '%s'" (loc_kind loc) (loc_name loc));
  Format.fprintf ppf ": %s" d.message;
  if d.related <> [] then
    Format.fprintf ppf " (via: %s)" (String.concat " -> " d.related)

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_name d.severity));
      ("pass", Json.String d.pass);
      ( "location",
        Json.Obj
          [
            ("kind", Json.String (loc_kind d.loc));
            ("name", Json.String (loc_name d.loc));
          ] );
      ("message", Json.String d.message);
      ("related", Json.List (List.map (fun s -> Json.String s) d.related));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let str field =
    match Option.bind (Json.member field j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "diagnostic: missing string field %S" field)
  in
  let* code = str "code" in
  let* sev_s = str "severity" in
  let* severity =
    match severity_of_name sev_s with
    | Some s -> Ok s
    | None -> Error ("diagnostic: bad severity " ^ sev_s)
  in
  let* pass = str "pass" in
  let* message = str "message" in
  let* loc =
    match Json.member "location" j with
    | None -> Error "diagnostic: missing location"
    | Some l -> (
        let kind = Option.bind (Json.member "kind" l) Json.to_string_opt in
        let name = Option.bind (Json.member "name" l) Json.to_string_opt in
        match (kind, name) with
        | Some "register", Some n -> Ok (Register n)
        | Some "net", Some n -> Ok (Net n)
        | Some "input", Some n -> Ok (Primary_input n)
        | Some "output", Some n -> Ok (Output_port n)
        | Some "state", Some n -> Ok (State n)
        | Some "symbol", Some n -> Ok (Input_symbol n)
        | Some "word", Some n -> Ok (Word n)
        | Some "circuit", _ -> Ok Whole_circuit
        | _ -> Error "diagnostic: bad location")
  in
  let* related =
    match Json.member "related" j with
    | None -> Ok []
    | Some r -> (
        match Json.to_list r with
        | None -> Error "diagnostic: related is not a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Json.to_string_opt item with
                | Some s -> Ok (s :: acc)
                | None -> Error "diagnostic: related entry is not a string")
              (Ok []) items
            |> Result.map List.rev)
  in
  Ok { code; severity; pass; loc; message; related }

type catalog_entry = {
  entry_code : string;
  default_severity : severity;
  title : string;
  fix : string;
}

let entry entry_code default_severity title fix =
  { entry_code; default_severity; title; fix }

let catalog =
  [
    entry "SA101" Error "combinational cycle through gate-level nets"
      "break the loop with a register or rewrite the feedback expression";
    entry "SA201" Warning "register stuck at a constant (never leaves its reset value)"
      "check the next-state expression; remove the register if intentional";
    entry "SA202" Warning "output port is constant under ternary propagation"
      "the port carries no information; wire it to live logic or drop it";
    entry "SA203" Warning "register update is never enabled (hold mux select is constant)"
      "fix the enable condition so the register can be written";
    entry "SA204" Info "register hold mux is degenerate (update always enabled)"
      "drop the mux and assign the next-state expression directly";
    entry "SA205" Error "input constraint is constant false (no valid input ever)"
      "relax the constraint; a machine with no valid input cannot be simulated";
    entry "SA301" Warning "latch outside every primary-output cone (abstraction candidate)"
      "abstract the latch away or add an output observing it";
    entry "SA302" Info "gates outside every primary-output cone"
      "dead logic; remove it or observe it through an output";
    entry "SA401" Error "floating net (read or observed but never driven)"
      "add a driver or delete the reference";
    entry "SA402" Error "multiply-driven net"
      "keep exactly one driver per net; mux the sources explicitly";
    entry "SA403" Warning "unused primary input"
      "remove the input or connect it to the logic it should influence";
    entry "SA404" Error "duplicate declaration name"
      "rename one of the declarations";
    entry "SA405" Error "expression references an out-of-range input/register index"
      "fix the index or declare the missing input/register";
    entry "SA406" Warning "indexed net family has gaps or duplicate indices"
      "renumber the family densely from 0";
    entry "SA501" Error "homomorphism map image out of range"
      "make the state/input maps land inside the abstract machine";
    entry "SA502" Warning "state map is not surjective onto the abstract states"
      "remove unreachable abstract states or extend the map";
    entry "SA503" Warning "input map is not surjective onto the abstract inputs"
      "remove unused abstract inputs or extend the map";
    entry "SA504" Error "merged states disagree on an abstract output (quotient cannot exist)"
      "refine the state map until merged states agree on every output";
    entry "SA505" Warning "abstract register depends on state its concrete counterpart does not"
      "tighten the abstraction or document the extra dependency";
    (* SA6xx — fsm-lint: Theorem 1 precondition certification *)
    entry "SA601" Error "reachable state has no valid input (dead end; no tour can continue)"
      "relax the input constraint at the state or make it unreachable";
    entry "SA602" Warning "state is unreachable from reset"
      "delete the state or add transitions reaching it; coverage metrics exclude it";
    entry "SA603" Warning "input symbol is never valid in any reachable state (dead input)"
      "remove the symbol from the alphabet or fix the validity predicate";
    entry "SA604" Error "valid reachable transition targets an out-of-range state or output"
      "fix the next/output tables so every valid transition stays in range";
    entry "SA605" Info "machine is partially specified (some state/input pairs invalid)"
      "expected for constrained test models; make sure the constraint is intended";
    entry "SA610" Error "machine is not strongly connected (no transition tour exists)"
      "add return transitions along the reported condensation cut, or add a reset input";
    entry "SA620" Error "equivalent state pair (machine is not minimal; tours lose their completeness guarantee)"
      "merge the reported pair or add an output distinguishing them";
    entry "SA630" Info "every reachable state pair is forall-k-distinguishable at the reported k"
      "nothing to fix; record k as the Theorem 1 exposure-window bound";
    entry "SA631" Error "state pair is not forall-k-distinguishable within the bound (a word masks the difference)"
      "strengthen outputs along the masking word or raise the analysis bound";
    entry "SA640" Warning "non-uniform output error can escape the transition tour (Requirement 1 violated)"
      "a tour is not a complete test for this fault class; use a checking sequence or W-method suite";
    entry "SA641" Warning "transfer error is masked on the transition tour (Requirement 4 violated)"
      "extend the tour past the reported window or use a distinguishing suffix";
    entry "SA650" Error "suite word applies an input that is invalid at the state it reaches"
      "fix the word at the reported position; the remainder is unreachable by simulation";
    entry "SA651" Warning "suite misses reachable transitions (no complete transition coverage)"
      "append words covering the reported (state, input) pairs";
    entry "SA652" Info "suite word covers no transition not already covered by earlier words"
      "drop the word or reorder the suite if the redundancy is intentional";
  ]

let explain code =
  List.find_opt (fun e -> e.entry_code = code) catalog
