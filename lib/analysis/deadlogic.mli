(** Primary-output cone analysis (pass [dead-logic], codes
    [SA301]/[SA302]).

    Finds latches and gates outside {e every} primary-output fanin
    cone — state that can never affect anything observable. These are
    exactly the paper's "state elements that do not affect outputs"
    (test-model guidelines, §5 / Requirement 2): sound candidates for
    the topological state-variable abstraction that
    {!Simcov_abstraction.Netabs.cone_reduce} implements. The pass
    therefore doubles as a hint generator: {!hints} is the
    machine-readable list the abstraction workflow consumes, and
    {!free_list} turns it into the index list
    {!Simcov_abstraction.Netabs.free_regs} /
    [cone_reduce] would remove.

    Cone membership is computed on the lowered {!Netgraph} (shared
    logic counted once). The input constraint is {e not} an output:
    a latch read only by the constraint is still reported dead — the
    paper measures observability against outputs — but the hint
    records [feeds_constraint] so the caller knows that removing it
    also relaxes the input space. *)

type hint = {
  reg_name : string;
  reg_index : int;
  group : string;
  feeds_constraint : bool;
      (** the latch can reach the input-constraint root *)
  next_gates : int;  (** AST size of its next-state logic *)
}

(** Reusable cone analysis over an already-lowered graph, so an
    orchestrator lowers once and shares it across passes. *)
type analysis = {
  graph : Netgraph.t;
  map : Netgraph.circuit_map;
  observable : bool array;
  feeds_constraint : bool array;
}

val analyze : Simcov_netlist.Circuit.t -> analysis
val analyze_graph : Netgraph.t * Netgraph.circuit_map -> analysis
val hints_of : Simcov_netlist.Circuit.t -> analysis -> hint list
val check_of : Simcov_netlist.Circuit.t -> analysis -> Diag.t list

val hints : Simcov_netlist.Circuit.t -> hint list
(** Dead latches in register-index order. *)

val free_list : hint list -> int list
(** Register indices, ascending — the argument
    {!Simcov_abstraction.Netabs.free_regs} expects, and the set
    {!Simcov_abstraction.Netabs.cone_reduce} deletes. *)

val hint_to_json : hint -> Simcov_util.Json.t

val dead_gate_count : Simcov_netlist.Circuit.t -> int
(** Distinct gate nets (hash-consed) that reach neither a primary
    output nor the input-constraint root. *)

val check : Simcov_netlist.Circuit.t -> Diag.t list
(** [SA301] (warning) per dead latch; one [SA302] (info) totalling the
    dead gate nets when any exist. *)
