(** 0/1/X abstract constant propagation (pass [ternary-const],
    codes [SA201]–[SA205]).

    Abstract interpretation of a circuit over the three-valued domain
    {!value}: [Zero] and [One] mean "provably always this constant",
    [Both] means "can be either / unknown". Primary inputs start at
    [Both] (the input constraint is conservatively ignored — this only
    widens the abstraction, so every "stuck" verdict remains sound);
    each register starts at its reset value and accumulates the join of
    everything its next-state function can produce, to a fixpoint. A
    register can only climb the lattice once, so the fixpoint needs at
    most [n_regs + 1] sweeps.

    Findings:
    - [SA201] register whose accumulated value is still a constant:
      stuck at its reset value, it never toggles — exactly the "state
      element that never changes" the paper's test-model guidelines
      exclude (cross-checked against {!Simcov_coverage.Stuckat}: the
      same-polarity stuck-at fault on that register is undetectable).
    - [SA202] output port that is ternary-constant: a stuck net.
    - [SA203] hold-style register ([mux sel update self] or
      [mux sel self update]) whose enable is ternary-constant {e off}:
      the update logic is dead. (Such a register is also stuck; the
      more specific [SA203] suppresses its [SA201].)
    - [SA204] hold-style register whose enable is ternary-constant
      {e on}: the hold mux is degenerate (info).
    - [SA205] input constraint that is ternary-constant false: no input
      is ever valid, every [step] raises (error). *)

type value = Zero | One | Both

val of_bool : bool -> value
val join : value -> value -> value
val to_string : value -> string

val eval : inputs:(int -> value) -> regs:(int -> value) -> Simcov_netlist.Expr.t -> value
(** Ternary evaluation with the usual short-circuits ([Zero] absorbs
    [and], [One] absorbs [or], a known select picks its mux branch, and
    [x xor x] over an unknown stays unknown). *)

type result = {
  reg_values : value array;  (** accumulated over all abstract runs *)
  output_values : value array;
  constraint_value : value;
  sweeps : int;  (** fixpoint iterations used *)
}

val analyze : ?budget:Simcov_util.Budget.t -> Simcov_netlist.Circuit.t -> result
(** One {!Simcov_util.Budget.step} per sweep. *)

val check : ?budget:Simcov_util.Budget.t -> Simcov_netlist.Circuit.t -> Diag.t list
