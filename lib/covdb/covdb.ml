module Json = Simcov_util.Json
module Crc32 = Simcov_util.Crc32
module Durable = Simcov_util.Durable
module Obs = Simcov_obs.Obs

let schema = "simcov-covdb/1"

let c_saves = Obs.counter "covdb.saves"
let c_loads = Obs.counter "covdb.loads"
let c_salvaged = Obs.counter "covdb.salvaged_lines"

type status =
  | Undetected
  | Excited of int
  | Detected of { excite_step : int option; detect_step : int }

type header = {
  backend : string;
  run : string;
  config_hash : string;
  stim_hash : string;
  word_length : int;
  total : int;
}

type t = {
  hdr : header;
  tbl : (string, status) Hashtbl.t;
  mutable complete : bool;
  mutable truncated : string option;
}

let create hdr =
  { hdr; tbl = Hashtbl.create 256; complete = false; truncated = None }

let header t = t.hdr
let set t k s = Hashtbl.replace t.tbl k s
let find t k = Hashtbl.find_opt t.tbl k
let n_records t = Hashtbl.length t.tbl
let complete t = t.complete
let set_complete t b = t.complete <- b
let truncated t = t.truncated
let set_truncated t r = t.truncated <- r

let sorted_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort String.compare

let iter t f = List.iter (fun k -> f k (Hashtbl.find t.tbl k)) (sorted_keys t)

let detected_keys t =
  List.filter
    (fun k -> match Hashtbl.find t.tbl k with Detected _ -> true | _ -> false)
    (sorted_keys t)

let counts t =
  Hashtbl.fold
    (fun _ s (u, e, d) ->
      match s with
      | Undetected -> (u + 1, e, d)
      | Excited _ -> (u, e + 1, d)
      | Detected _ -> (u, e, d + 1))
    t.tbl (0, 0, 0)

let status_equal a b =
  match (a, b) with
  | Undetected, Undetected -> true
  | Excited i, Excited j -> i = j
  | Detected a, Detected b ->
      a.detect_step = b.detect_step && a.excite_step = b.excite_step
  | _ -> false

let equal a b =
  a.hdr = b.hdr && a.complete = b.complete && a.truncated = b.truncated
  && n_records a = n_records b
  && Hashtbl.fold
       (fun k s ok ->
         ok && match find b k with Some s' -> status_equal s s' | None -> false)
       a.tbl true

(* ---- the line format ---- *)

(* a line is the minified JSON of its payload fields plus a trailing
   ["crc"] field holding the CRC-32 of the payload-only rendering *)
let line_of_fields fields =
  let payload = Json.to_string ~indent:0 (Json.Obj fields) in
  Json.to_string ~indent:0
    (Json.Obj (fields @ [ ("crc", Json.String (Crc32.to_hex (Crc32.string payload))) ]))

(* Verify and strip a line's crc: parse, split off the ["crc"] member,
   re-render the remaining fields minified (the parser preserves field
   order, and every value type we write round-trips byte-exactly) and
   compare checksums. [None] on any mismatch or malformation. *)
let fields_of_line line =
  match Json.parse line with
  | Error _ -> None
  | Ok (Json.Obj fields) -> (
      match List.partition (fun (k, _) -> k = "crc") fields with
      | [ (_, Json.String crc) ], payload_fields ->
          let payload = Json.to_string ~indent:0 (Json.Obj payload_fields) in
          if Crc32.to_hex (Crc32.string payload) = crc then Some payload_fields
          else None
      | _ -> None)
  | Ok _ -> None

let header_fields h =
  [
    ("schema", Json.String schema);
    ("backend", Json.String h.backend);
    ("run", Json.String h.run);
    ("config_hash", Json.String h.config_hash);
    ("stim_hash", Json.String h.stim_hash);
    ("word_length", Json.Int h.word_length);
    ("total", Json.Int h.total);
  ]

let record_fields k s =
  ("k", Json.String k)
  ::
  (match s with
  | Undetected -> [ ("s", Json.String "u") ]
  | Excited es -> [ ("s", Json.String "e"); ("es", Json.Int es) ]
  | Detected { excite_step; detect_step } ->
      ("s", Json.String "d")
      :: (match excite_step with None -> [] | Some es -> [ ("es", Json.Int es) ])
      @ [ ("ds", Json.Int detect_step) ])

let footer_fields t =
  [
    ("records", Json.Int (n_records t));
    ("complete", Json.Bool t.complete);
    ( "truncated",
      match t.truncated with None -> Json.Null | Some r -> Json.String r );
  ]

let save t path =
  Obs.incr c_saves;
  Durable.write_file path (fun oc ->
      let put fields =
        output_string oc (line_of_fields fields);
        output_char oc '\n'
      in
      put (header_fields t.hdr);
      iter t (fun k s -> put (record_fields k s));
      put (footer_fields t))

type loaded = { db : t; salvaged : bool }

(* ---- reading back ---- *)

let str_field fields k = Option.bind (List.assoc_opt k fields) Json.to_string_opt
let int_field fields k = Option.bind (List.assoc_opt k fields) Json.to_int_opt

let header_of_fields fields =
  match
    ( str_field fields "schema",
      str_field fields "backend",
      str_field fields "run",
      str_field fields "config_hash",
      str_field fields "stim_hash",
      int_field fields "word_length",
      int_field fields "total" )
  with
  | Some s, Some backend, Some run, Some config_hash, Some stim_hash,
    Some word_length, Some total
    when s = schema ->
      Some { backend; run; config_hash; stim_hash; word_length; total }
  | _ -> None

let record_of_fields fields =
  match (str_field fields "k", str_field fields "s") with
  | Some k, Some "u" -> Some (k, Undetected)
  | Some k, Some "e" -> (
      match int_field fields "es" with
      | Some es -> Some (k, Excited es)
      | None -> None)
  | Some k, Some "d" -> (
      match int_field fields "ds" with
      | Some ds -> Some (k, Detected { excite_step = int_field fields "es"; detect_step = ds })
      | None -> None)
  | _ -> None

let footer_of_fields fields =
  match (int_field fields "records", List.assoc_opt "complete" fields) with
  | Some n, Some (Json.Bool c) ->
      let truncated =
        match List.assoc_opt "truncated" fields with
        | Some (Json.String r) -> Some r
        | _ -> None
      in
      Some (n, c, truncated)
  | _ -> None

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      Obs.incr c_loads;
      let lines = String.split_on_char '\n' text in
      match lines with
      | [] -> Error "empty file"
      | hline :: rest -> (
          match Option.bind (fields_of_line hline) header_of_fields with
          | None -> Error "missing or corrupt simcov-covdb/1 header"
          | Some hdr ->
              let db = create hdr in
              (* Records are trusted up to the first damaged line; a
                 valid footer whose count matches the records read seals
                 the snapshot, anything else salvages the prefix. *)
              let salvaged = ref false in
              let sealed = ref false in
              (try
                 List.iter
                   (fun line ->
                     if line = "" then () (* the trailing newline *)
                     else if !sealed then begin
                       (* bytes after the footer: damage *)
                       salvaged := true;
                       raise Exit
                     end
                     else
                       match fields_of_line line with
                       | None ->
                           salvaged := true;
                           raise Exit
                       | Some fields -> (
                           match record_of_fields fields with
                           | Some (k, s) -> set db k s
                           | None -> (
                               match footer_of_fields fields with
                               | Some (n, c, tr) when n = n_records db ->
                                   db.complete <- c;
                                   db.truncated <- tr;
                                   sealed := true
                               | _ ->
                                   salvaged := true;
                                   raise Exit)))
                   rest
               with Exit -> ());
              if not !sealed then salvaged := true;
              if !salvaged then begin
                db.complete <- false;
                Obs.incr c_salvaged;
                Obs.event "covdb.salvage" ~fields:(fun () ->
                    [
                      ("path", Json.String path);
                      ("records", Json.Int (n_records db));
                    ])
              end;
              Ok { db; salvaged = !salvaged }))

(* ---- aggregation ---- *)

let strongest a b =
  match (a, b) with
  | Detected x, Detected y ->
      if y.detect_step < x.detect_step then b
      else if x.detect_step < y.detect_step then a
      else
        Detected
          {
            detect_step = x.detect_step;
            excite_step =
              (match (x.excite_step, y.excite_step) with
              | Some i, Some j -> Some (min i j)
              | Some i, None | None, Some i -> Some i
              | None, None -> None);
          }
  | Detected _, _ -> a
  | _, Detected _ -> b
  | Excited i, Excited j -> if j < i then b else a
  | Excited _, _ -> a
  | _, Excited _ -> b
  | Undetected, Undetected -> a

let compatible dbs =
  match dbs with
  | [] -> Error "no inputs"
  | first :: rest -> (
      let h0 = header first in
      let clash =
        List.find_opt
          (fun db ->
            (header db).backend <> h0.backend
            || (header db).config_hash <> h0.config_hash)
          rest
      in
      match clash with
      | Some db ->
          Error
            (Printf.sprintf
               "incompatible inputs: run %S has backend/config %s/%s, run %S has %s/%s"
               h0.run h0.backend h0.config_hash (header db).run
               (header db).backend (header db).config_hash)
      | None -> Ok h0)

let merge dbs =
  match compatible dbs with
  | Error _ as e -> e
  | Ok h0 ->
      let same_stim =
        List.for_all (fun db -> (header db).stim_hash = h0.stim_hash) dbs
      in
      let out =
        create
          {
            h0 with
            run = String.concat "+" (List.map (fun db -> (header db).run) dbs);
            stim_hash = (if same_stim then h0.stim_hash else "");
            word_length = (if same_stim then h0.word_length else 0);
          }
      in
      List.iter
        (fun db ->
          iter db (fun k s ->
              match find out k with
              | None -> set out k s
              | Some s0 -> set out k (strongest s0 s)))
        dbs;
      out.complete <- List.for_all complete dbs;
      Ok out

type selection = {
  chosen : (string * int) list;
  covered : int;
  union_detected : int;
}

let minimize runs =
  match compatible (List.map snd runs) with
  | Error e -> Error e
  | Ok _ ->
      let union = Hashtbl.create 256 in
      List.iter
        (fun (_, db) ->
          List.iter (fun k -> Hashtbl.replace union k ()) (detected_keys db))
        runs;
      let union_detected = Hashtbl.length union in
      let covered = Hashtbl.create 256 in
      let remaining = ref runs in
      let chosen = ref [] in
      let continue = ref true in
      while !continue && Hashtbl.length covered < union_detected do
        (* the run covering the most uncovered faults; ties break toward
           the earliest argument, making the selection deterministic *)
        let best = ref None in
        List.iter
          (fun (name, db) ->
            let gain =
              List.fold_left
                (fun n k -> if Hashtbl.mem covered k then n else n + 1)
                0 (detected_keys db)
            in
            match !best with
            | Some (_, _, g) when g >= gain -> ()
            | _ when gain = 0 -> ()
            | _ -> best := Some (name, db, gain))
          !remaining;
        match !best with
        | None -> continue := false
        | Some (name, db, gain) ->
            List.iter (fun k -> Hashtbl.replace covered k ()) (detected_keys db);
            chosen := (name, gain) :: !chosen;
            remaining := List.filter (fun (n, _) -> n != name) !remaining
      done;
      Ok
        {
          chosen = List.rev !chosen;
          covered = Hashtbl.length covered;
          union_detected;
        }
