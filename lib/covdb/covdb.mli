(** The durable coverage database: crash-safe per-fault campaign
    results.

    A campaign fleet only pays off when coverage survives the run that
    produced it. This module is the persistence layer: one {!t} holds
    the per-fault status of one campaign run (or a merge of many), and
    the on-disk snapshot format is designed so that any crash — torn
    write, [kill -9], bit rot — loses at most the records past the
    corruption point, never the whole file and never silently.

    {b Snapshot format} ([simcov-covdb/1]). A snapshot is a text file
    of one minified JSON object per line, so generic tooling ([jq])
    can read it, yet every line carries its own integrity check:

    - line 1, the {e header}:
      [{"schema":"simcov-covdb/1","backend":…,"run":…,"config_hash":…,
        "stim_hash":…,"word_length":…,"total":…,"crc":…}];
    - then one {e record} per fault:
      [{"k":<key>,"s":"u"|"e"|"d","es":<step>?,"ds":<step>?,"crc":…}]
      — undetected, excited at step [es], or detected at step [ds]
      (with the excitation step when one was seen);
    - last, the {e footer}:
      [{"records":<n>,"complete":<bool>,"truncated":<resource|null>,
        "crc":…}] — the truncation point: how many records the writer
      meant to publish, whether the run finished, and what budget
      resource cut it short if not.

    Each line's ["crc"] field is the CRC-32 ({!Simcov_util.Crc32}) of
    that line's JSON {e without} the crc field, minified. Snapshots are
    published with {!Simcov_util.Durable} (temp file + fsync + rename),
    so the destination path always holds a previously committed
    snapshot; the per-line CRCs additionally catch snapshots damaged
    after commit, and {!load} salvages the longest valid prefix rather
    than erroring out.

    {b Keys.} Records are keyed by an opaque caller-chosen string that
    must identify a fault stably across runs (see [Fault.key] /
    [Stuckat.fault_key]). [config_hash] fingerprints the fault
    population (and model) — {!merge} requires it to match;
    [stim_hash] fingerprints the stimulus word — resuming additionally
    requires it to match, because recorded step indices only make
    sense against the same word. *)

(** Per-fault outcome, mirroring the campaign verdict exactly so a
    resumed run reproduces the uninterrupted report byte for byte. *)
type status =
  | Undetected  (** evaluated to the end of the word; never excited *)
  | Excited of int  (** excited at this step, never detected *)
  | Detected of { excite_step : int option; detect_step : int }

type header = {
  backend : string;  (** campaign backend tag, e.g. ["fsm-fault"] *)
  run : string;  (** caller-chosen run label (deterministic, no clock) *)
  config_hash : string;  (** fingerprint of the fault population/model *)
  stim_hash : string;  (** fingerprint of the stimulus word *)
  word_length : int;
  total : int;  (** faults submitted to the campaign, incl. ineffective *)
}

type t

val create : header -> t
(** An empty database: no records, [complete = false], no truncation. *)

val header : t -> header

val set : t -> string -> status -> unit
(** Insert or replace one fault's record. *)

val find : t -> string -> status option
val n_records : t -> int

val complete : t -> bool
(** Whether the snapshot was written by a run that finished (all faults
    decided, no truncation, no interruption). *)

val set_complete : t -> bool -> unit

val truncated : t -> string option
(** The budget resource that cut the producing run short, if any. *)

val set_truncated : t -> string option -> unit

val iter : t -> (string -> status -> unit) -> unit
(** In ascending key order — the canonical (and persisted) order, so
    equal databases serialize to equal bytes. *)

val detected_keys : t -> string list
(** Keys with a [Detected] record, ascending. *)

val counts : t -> int * int * int
(** [(undetected, excited, detected)] record counts. *)

val status_equal : status -> status -> bool
val equal : t -> t -> bool
(** Header, records, completeness and truncation all equal. *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Publish a snapshot atomically and durably ({!Simcov_util.Durable}).
    Records are written in ascending key order. *)

type loaded = {
  db : t;
  salvaged : bool;
      (** true when corrupt or torn trailing lines were dropped — the
          [db] then holds the longest valid record prefix and is marked
          incomplete *)
}

val load : string -> (loaded, string) result
(** Read a snapshot back. [Error] only when the file cannot be read at
    all or its header line is missing/corrupt (there is nothing to
    trust a salvage against); any damage after the header degrades to
    [Ok] with [salvaged = true]. Never raises on file contents. *)

(** {1 Aggregation} *)

val merge : t list -> (t, string) result
(** Union across runs/shards of the same campaign configuration.
    All inputs must share [backend] and [config_hash] ([Error]
    otherwise — coverage of different fault populations must not be
    conflated); [stim_hash] may differ (different stimulus words are
    the point of a fleet) and is cleared to [""] in the result unless
    all inputs agree. Per key, the strongest status wins
    ([Detected > Excited > Undetected]); between two of the same kind
    the earliest step wins. The result is [complete] iff every input
    was. *)

type selection = {
  chosen : (string * int) list;
      (** selected run labels in greedy pick order, with the number of
          newly covered faults each contributed *)
  covered : int;  (** detected faults covered by the selection *)
  union_detected : int;  (** detected faults in the union of all runs *)
}

val minimize : (string * t) list -> (selection, string) result
(** Greedy set cover: repeatedly pick the run detecting the most
    not-yet-covered faults (ties broken by argument order) until the
    union's detected set is covered — compressing a campaign fleet to
    a minimal regression suite. Runs contributing nothing new are
    dropped. Same compatibility requirements as {!merge}. *)
