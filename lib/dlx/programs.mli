(** A small library of classic DLX kernels.

    Realistic workloads — the kind of programs the paper's intro
    scenario actually simulates — used as integration stimuli for the
    spec / 5-stage / dual-issue trio and as demonstration material.
    Each kernel is self-contained assembly (no preloads needed) and
    terminates. *)

type kernel = {
  name : string;
  description : string;
  source : string;  (** assembly text *)
  checks : (int * int32) list;  (** register values expected at halt *)
}

val all : kernel list
(** fibonacci, memcpy, bubble-sort (3 elements), dot-product, gcd,
    popcount. *)

val find : string -> kernel option
type error = { kernel : string; detail : string }
(** A kernel whose embedded assembly fails to parse — a library bug,
    surfaced as data rather than an exception so callers can report it
    alongside their other results. *)

val error_to_string : error -> string

val program : kernel -> (Isa.t array, error) result
(** Assembled. *)

val run_spec : kernel -> (Spec.t, error) result
(** Execute on the architectural model and return the final state. *)

val validate_all : unit -> (string * (Validate.outcome, error) result) list
(** Every kernel through the 5-stage pipeline comparison. *)

val validate_all_dual : unit -> (string * (Validate.outcome, error) result) list
(** Every kernel through the dual-issue comparison. *)
