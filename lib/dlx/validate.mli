(** Implementation validation: spec vs. pipeline at commit checkpoints.

    Runs the same program through the architectural simulator and the
    pipelined implementation and compares the commit streams — the
    right half of the paper's Figure 1 ("Behavioral Simulator" vs "RTL
    Simulator" with output comparison at checkpoints). *)

type mismatch = {
  index : int;  (** position in the commit stream *)
  expected : Spec.commit option;  (** [None]: implementation committed extra work *)
  actual : Spec.commit option;  (** [None]: implementation committed too little *)
}

type outcome = Pass of int  (** number of commits compared *) | Fail of mismatch

val run_program :
  ?bugs:Pipeline.bugs ->
  ?max_steps:int ->
  ?preload_regs:(int * int32) list ->
  ?preload_mem:(int * int32) list ->
  Isa.t array ->
  outcome
(** Execute the program on both models (optionally pre-loading state on
    both sides identically) and compare commit-by-commit. *)

val detects_bug : program:Isa.t array -> Pipeline.bugs -> bool
(** Does this program expose the bug (i.e. produce a mismatch)? A
    buggy configuration that still passes means the test set failed to
    cover the bug. *)

(** {1 Bug campaigns}

    Campaigns over the {!Pipeline.bug_catalog} route through the shared
    {!Simcov_campaign.Campaign} driver: a fault is a named bug
    configuration, a stimulus element is a whole test program, and the
    driver provides budgeting, early exit per bug, and the unified
    report. Excitation equals detection for this backend — the commit
    stream offers no finer probe than a mismatch. *)

module Campaign = Simcov_campaign.Campaign

type test_program = {
  program : Isa.t array;
  preload_regs : (int * int32) list;
  preload_mem : (int * int32) list;
}

val test_program :
  ?preload_regs:(int * int32) list ->
  ?preload_mem:(int * int32) list ->
  Isa.t array ->
  test_program

type campaign_result = {
  bug_results : (string * bool) list;
      (** bug name, detected? (bugs skipped by a truncated budget are
          listed undetected — see [report.skipped]) *)
  n_detected : int;
  n_bugs : int;
  report : (string * Pipeline.bugs) Campaign.report;
      (** the unified campaign report (schema [simcov-campaign/1]) *)
}

val bug_campaign_tests :
  ?budget:Simcov_util.Budget.t ->
  ?jobs:int ->
  ?on_batch:(Campaign.progress -> unit) ->
  test_program list ->
  campaign_result
(** A bug is detected if any of the test programs exposes it; one
    budget step is consumed per bug, and exhaustion yields a
    [truncated] partial report (never an exception). The backend is
    scalar (one bug per batch), so [jobs] shards whole bugs across
    domains. *)

val bug_campaign : Isa.t array -> campaign_result
(** Run the full {!Pipeline.bug_catalog} against one test program. *)

val bug_campaign_multi : Isa.t array list -> campaign_result
(** A bug is detected if any of the programs exposes it. *)

val pp_outcome : Format.formatter -> outcome -> unit
