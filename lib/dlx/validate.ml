type mismatch = {
  index : int;
  expected : Spec.commit option;
  actual : Spec.commit option;
}

type outcome = Pass of int | Fail of mismatch

let commits_equal (a : Spec.commit) (b : Spec.commit) =
  a.Spec.at_pc = b.Spec.at_pc
  && a.Spec.instr = b.Spec.instr
  && a.Spec.reg_write = b.Spec.reg_write
  && a.Spec.mem_write = b.Spec.mem_write
  && a.Spec.next_pc = b.Spec.next_pc

let run_program ?(bugs = Pipeline.no_bugs) ?(max_steps = 10_000) ?(preload_regs = [])
    ?(preload_mem = []) program =
  let spec = Spec.create program in
  let pipe = Pipeline.create ~bugs program in
  List.iter (fun (r, v) -> Spec.set_reg spec r v) preload_regs;
  List.iter (fun (r, v) -> Pipeline.set_reg pipe r v) preload_regs;
  List.iter (fun (a, v) -> Spec.set_mem spec a v) preload_mem;
  List.iter (fun (a, v) -> Pipeline.set_mem pipe a v) preload_mem;
  let expected = Spec.run ~max_steps spec in
  let actual = Pipeline.run ~max_cycles:(max_steps * 4) pipe in
  let rec compare idx exp act =
    match (exp, act) with
    | [], [] -> Pass idx
    | e :: exp', a :: act' ->
        if commits_equal e a then compare (idx + 1) exp' act'
        else Fail { index = idx; expected = Some e; actual = Some a }
    | e :: _, [] -> Fail { index = idx; expected = Some e; actual = None }
    | [], a :: _ -> Fail { index = idx; expected = None; actual = Some a }
  in
  compare 0 expected actual

let detects_bug ~program bugs =
  match run_program ~bugs program with Pass _ -> false | Fail _ -> true

module Campaign = Simcov_campaign.Campaign

type test_program = {
  program : Isa.t array;
  preload_regs : (int * int32) list;
  preload_mem : (int * int32) list;
}

let test_program ?(preload_regs = []) ?(preload_mem = []) program =
  { program; preload_regs; preload_mem }

(* The pipeline-bug backend: a "fault" is a named bug configuration
   from the catalog, a stimulus element is a whole test program, and
   one lockstep step is a full spec-vs-pipeline run. The commit-stream
   comparison cannot be bit-packed, so batches are scalar
   ([max_lanes = 1]) — the shared driver still provides budgeting
   (one budget step per bug), early exit on detection (replacing the
   old [List.exists]), and the unified report. Excitation has no finer
   probe than detection here: a mismatching commit stream is both. *)
module Bug_backend = struct
  type ctx = unit
  type fault = string * Pipeline.bugs
  type stim = test_program

  let name = "dlx-pipeline"
  let max_lanes = 1
  let effective () _ = true

  type batch = fault array

  let start () faults = faults

  let step (b : batch) ~active t =
    let detected = ref 0 in
    Campaign.iter_bits active (fun l ->
        let _, bugs = b.(l) in
        match
          run_program ~bugs ~preload_regs:t.preload_regs
            ~preload_mem:t.preload_mem t.program
        with
        | Fail _ -> detected := !detected lor (1 lsl l)
        | Pass _ -> ());
    { Campaign.excited = !detected; detected = !detected; halt = false }
end

module Driver = Campaign.Make (Bug_backend)

type campaign_result = {
  bug_results : (string * bool) list;
  n_detected : int;
  n_bugs : int;
  report : (string * Pipeline.bugs) Campaign.report;
}

let bug_campaign_tests ?budget ?jobs ?on_batch tests =
  let o = Driver.run ?budget ?jobs ?on_batch () Pipeline.bug_catalog tests in
  let verdict_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun ((name, _), (v : Campaign.verdict)) ->
        Hashtbl.replace tbl name v.Campaign.detected)
      o.Campaign.verdicts;
    fun name -> match Hashtbl.find_opt tbl name with Some d -> d | None -> false
  in
  (* bugs skipped by a truncated budget are listed undetected; the
     report's [skipped] count says how many were never run *)
  let bug_results =
    List.map (fun (name, _) -> (name, verdict_of name)) Pipeline.bug_catalog
  in
  {
    bug_results;
    n_detected = o.Campaign.report.Campaign.detected;
    n_bugs = List.length Pipeline.bug_catalog;
    report = o.Campaign.report;
  }

let bug_campaign_multi programs =
  bug_campaign_tests (List.map (fun p -> test_program p) programs)

let bug_campaign program = bug_campaign_multi [ program ]

let pp_outcome ppf = function
  | Pass n -> Format.fprintf ppf "PASS (%d commits compared)" n
  | Fail { index; expected; actual } ->
      Format.fprintf ppf "FAIL at commit %d:@\n  expected: %a@\n  actual:   %a" index
        (Format.pp_print_option ~none:(fun ppf () -> Format.pp_print_string ppf "(nothing)")
           Spec.pp_commit)
        expected
        (Format.pp_print_option ~none:(fun ppf () -> Format.pp_print_string ppf "(nothing)")
           Spec.pp_commit)
        actual
