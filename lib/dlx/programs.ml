type kernel = {
  name : string;
  description : string;
  source : string;
  checks : (int * int32) list;
}

let fibonacci =
  {
    name = "fibonacci";
    description = "iterative Fibonacci: r3 = fib(11) = 89";
    source =
      "addi r1, r0, 0\n\
       addi r2, r0, 1\n\
       addi r4, r0, 10\n\
       add r3, r1, r2\n\
       add r1, r2, r0\n\
       add r2, r3, r0\n\
       addi r4, r4, -1\n\
       bnez r4, -5\n";
    checks = [ (3, 89l) ];
  }

let memcpy =
  {
    name = "memcpy";
    description = "seed 4 words then copy them 16 cells up; r6 = last copied";
    source =
      "addi r1, r0, 4\n\
       addi r2, r0, 0\n\
       addi r5, r0, 7\n\
       addi r5, r5, 5\n\
       sw r5, 0(r2)\n\
       addi r2, r2, 1\n\
       addi r1, r1, -1\n\
       bnez r1, -5\n\
       addi r1, r0, 4\n\
       addi r2, r0, 0\n\
       lw r3, 0(r2)\n\
       sw r3, 16(r2)\n\
       addi r2, r2, 1\n\
       addi r1, r1, -1\n\
       bnez r1, -5\n\
       lw r6, 19(r0)\n";
    checks = [ (6, 27l) ];
  }

let bubble =
  {
    name = "bubble";
    description = "bubble-sorts the values 30,10,20 into r1 <= r2 <= r3";
    source =
      "addi r1, r0, 30\n\
       addi r2, r0, 10\n\
       addi r3, r0, 20\n\
       sgt r4, r1, r2\n\
       beqz r4, 4\n\
       add r5, r1, r0\n\
       add r1, r2, r0\n\
       add r2, r5, r0\n\
       nop\n\
       sgt r4, r2, r3\n\
       beqz r4, 4\n\
       add r5, r2, r0\n\
       add r2, r3, r0\n\
       add r3, r5, r0\n\
       nop\n\
       sgt r4, r1, r2\n\
       beqz r4, 4\n\
       add r5, r1, r0\n\
       add r1, r2, r0\n\
       add r2, r5, r0\n\
       nop\n\
       nop\n";
    checks = [ (1, 10l); (2, 20l); (3, 30l) ];
  }

let array_sum =
  {
    name = "array-sum";
    description = "seed mem[32..35] with 3,5,7,9 and reduce: r3 = 24";
    source =
      "addi r1, r0, 4\n\
       addi r2, r0, 32\n\
       addi r3, r0, 0\n\
       addi r4, r0, 3\n\
       sw r4, 0(r2)\n\
       addi r4, r4, 2\n\
       addi r2, r2, 1\n\
       addi r1, r1, -1\n\
       bnez r1, -5\n\
       addi r1, r0, 4\n\
       addi r2, r0, 32\n\
       lw r5, 0(r2)\n\
       add r3, r3, r5\n\
       addi r2, r2, 1\n\
       addi r1, r1, -1\n\
       bnez r1, -5\n";
    checks = [ (3, 24l) ];
  }

let gcd =
  {
    name = "gcd";
    description = "gcd(48, 36) by repeated subtraction: r1 = r2 = 12";
    source =
      "addi r1, r0, 48\n\
       addi r2, r0, 36\n\
       sub r3, r1, r2\n\
       beqz r3, 6\n\
       sgt r4, r1, r2\n\
       beqz r4, 2\n\
       sub r1, r1, r2\n\
       j 2\n\
       sub r2, r2, r1\n\
       j 2\n\
       nop\n";
    checks = [ (1, 12l); (2, 12l) ];
  }

let popcount =
  {
    name = "popcount";
    description = "population count of 181 (0b10110101): r2 = 5";
    source =
      "addi r1, r0, 181\n\
       addi r2, r0, 0\n\
       beqz r1, 5\n\
       andi r3, r1, 1\n\
       add r2, r2, r3\n\
       srli r1, r1, 1\n\
       j 2\n\
       nop\n\
       nop\n";
    checks = [ (2, 5l) ];
  }

let all = [ fibonacci; memcpy; bubble; array_sum; gcd; popcount ]

let find name = List.find_opt (fun k -> k.name = name) all

type error = { kernel : string; detail : string }

let error_to_string e =
  Printf.sprintf "kernel '%s' does not assemble: %s" e.kernel e.detail

let program k =
  match Isa.parse_program k.source with
  | Ok p -> Ok p
  | Error e -> Error { kernel = k.name; detail = e }

let run_spec k =
  Result.map
    (fun p ->
      let s = Spec.create p in
      let _ = Spec.run s in
      s)
    (program k)

let validate_all () =
  List.map
    (fun k -> (k.name, Result.map (fun p -> Validate.run_program p) (program k)))
    all

let validate_all_dual () =
  List.map
    (fun k -> (k.name, Result.map (fun p -> Dual.validate p) (program k)))
    all
