(** End-to-end validation driver (Figure 1 of the paper).

    Ties the pieces together for the DLX case study: build the test
    model, check Requirements, certify completeness (Theorems 1–3),
    generate the transition tour, concretize it into a DLX program,
    simulate specification and implementation, and compare at the
    instruction-commit checkpoints. *)

module Budget = Simcov_util.Budget

type tier =
  | Partitioned_symbolic  (** conjunct-per-latch relation, early quantification *)
  | Monolithic_symbolic  (** single-BDD transition relation *)
  | Explicit  (** plain enumeration of the tabulated machine; never fails *)

val tier_name : tier -> string

type symbolic_figures = {
  sym_states : float;  (** reachable states *)
  sym_transitions : float;  (** (reachable state, valid input) pairs *)
  tier : tier;  (** representation that actually produced the figures *)
  degradations : string list;
      (** one note per abandoned richer tier, in the order tried;
          empty when the first tier succeeded *)
}

type run_report = {
  config : Simcov_dlx.Testmodel.config;
  lint_errors : Simcov_analysis.Diag.t list;
      (** error-severity findings from the static-analysis front gate
          over the control netlists (warnings are not collected here;
          run [simcov lint] for the full report) *)
  fsm_lint : Simcov_analysis.Fsm_lint.report;
      (** the FSM-level precondition certification (SA6xx) of the
          tabulated test model: strong connectivity, minimality, the
          certified ∀k bound ([fsm_lint.stats.certified_k]) and the
          R1/R4 structural fault checks. Warnings do not fail the run;
          error-severity findings do (at the CLI, like [lint_errors]). *)
  model_states : int;
  model_transitions : int;
  symbolic : symbolic_figures;
      (** the same counts recomputed symbolically — or at whatever
          point on the degradation ladder the budget allowed *)
  requirements : Requirements.report;
  certificate : (Completeness.certificate, Completeness.failure) result;
  tour_length : int;
  program_length : int;  (** concretized DLX program, including filler slots *)
  issued : int;  (** instructions the tour program issues *)
  bug_results : (string * bool) list;  (** seeded pipeline bug -> detected? *)
  n_bugs_detected : int;
  bug_coverage : (string * Simcov_dlx.Pipeline.bugs) Simcov_campaign.Campaign.report;
      (** the pipeline bug campaign's unified report (budget-aware:
          [truncated] when the budget ran out mid-campaign) *)
  fsm_fault_coverage : Simcov_coverage.Detect.report;
      (** FSM-level fault injection on the test model itself *)
  timings : (string * float) list;
      (** wall-clock seconds per phase, in run order (lint, tabulate,
          fsm_lint, symbolic, requirements, certificate, tour,
          concretize, bug_campaign, fsm_campaign); the same durations
          are observed on the [methodology.<phase>] metrics timers *)
}

val campaigns_truncated : run_report -> bool
(** Did either fault campaign run out of budget? Surfaced as the
    resource-limit exit code by the CLI. *)

val validate_dlx :
  ?config:Simcov_dlx.Testmodel.config ->
  ?seed:int ->
  ?budget:Budget.t ->
  ?reorder:Simcov_symbolic.Symfsm.reorder_mode ->
  ?lanes:int ->
  ?jobs:int ->
  unit ->
  run_report
(** Run the full methodology. Before any symbolic effort is spent, the
    static-analysis passes ({!Simcov_analysis.Lint}) sweep the DLX
    control netlists; error-severity findings land in
    [lint_errors] (and fail the run at the CLI). With the default
    configuration the
    certificate holds, FSM fault coverage is 100% and all seeded
    pipeline bugs are detected; with [track_dest = false] or
    [observable_dest = false] the corresponding requirement fails and
    coverage drops — the paper's Section 6.3 ablation.

    [budget] governs resources. Its node allowance caps the BDD
    managers of the symbolic phase, which degrades gracefully down the
    {!tier} ladder (partitioned → monolithic → explicit) rather than
    failing — a run under an arbitrarily small node budget still
    returns a complete report, with [symbolic.degradations] recording
    what was given up. The deadline/step budget, by contrast, bounds
    the whole pipeline: it is checked between the early phases and
    @raise Budget.Budget_exceeded when it runs out there, since a
    report without a tour would not be a validation. Once the tour
    exists, the two fault campaigns degrade instead: exhausting the
    budget mid-campaign yields [truncated]-tagged partial campaign
    reports (see {!campaigns_truncated}), never an exception.

    [lanes] and [jobs] tune the campaign legs: [lanes] selects the
    lane width of the FSM fault campaign (wide bit-sliced lanes beyond
    [Sys.int_size]) and [jobs] shards both campaigns across that many
    domains — results are bit-identical to the sequential run. *)

val pp_run_report : Format.formatter -> run_report -> unit

(** {1 The Section 6.3 ablation}

    Dropping the destination-register addresses from the test-model
    state ("abstracting too much"). The abstract (dest-less) model
    still admits a transition tour, but that tour, replayed against
    the {e refined} model, covers only a fraction of its transitions:
    output errors that are non-uniform at the abstract level are
    excited only along histories the abstract tour need not take. *)

type ablation_report = {
  refined_transitions : int;
  abstract_transitions : int;
  refined_covered_by_abstract_tour : int;
  refined_tour_length : int;
  abstract_tour_length : int;
  quotient_conflict : bool;  (** the state merge is not an exact abstraction *)
  fault_coverage_abstract_tour : Simcov_coverage.Detect.report;
      (** faults injected on the refined model, tested with the
          abstract model's tour *)
  fault_coverage_refined_tour : Simcov_coverage.Detect.report;
      (** same faults, refined model's own tour *)
}

val ablation_dest_tracking :
  ?config:Simcov_dlx.Testmodel.config -> ?seed:int -> unit -> ablation_report

val pp_ablation_report : Format.formatter -> ablation_report -> unit
