open Simcov_dlx
module Budget = Simcov_util.Budget
module Obs = Simcov_obs.Obs
module Json = Simcov_util.Json

type tier = Partitioned_symbolic | Monolithic_symbolic | Explicit

let tier_name = function
  | Partitioned_symbolic -> "partitioned symbolic"
  | Monolithic_symbolic -> "monolithic symbolic"
  | Explicit -> "explicit enumeration"

type symbolic_figures = {
  sym_states : float;
  sym_transitions : float;
  tier : tier;
  degradations : string list;
}

(* The state/transition counts of the test model, computed at the
   richest representation the resource budget admits: partitioned
   symbolic reachability, then the monolithic relation, then plain
   enumeration of the already-tabulated machine (which needs no BDDs
   at all and cannot fail). Each abandoned tier leaves a note. *)
let symbolic_figures ~budget ~reorder model =
  let module Symfsm = Simcov_symbolic.Symfsm in
  let module Bdd = Simcov_bdd.Bdd in
  let attempt tier =
    let partitioned = tier = Partitioned_symbolic in
    try
      let sf = Symfsm.of_fsm ~budget ~reorder model in
      let tr = Symfsm.traverse ~partitioned ~budget sf in
      match tr.Symfsm.truncated with
      | Some r ->
          Error
            (Printf.sprintf "%s reachability truncated (out of %s)"
               (tier_name tier) (Budget.resource_name r))
      | None ->
          sf.Symfsm.reach <- Some tr;
          ignore (Bdd.protect sf.Symfsm.man tr.Symfsm.reached);
          Ok
            {
              sym_states = Symfsm.count_reachable sf;
              sym_transitions = Symfsm.count_transitions sf;
              tier;
              degradations = [];
            }
    with
    | Bdd.Node_limit live ->
        Error
          (Printf.sprintf "%s out of BDD nodes (%d live at the ceiling)"
             (tier_name tier) live)
    | Budget.Budget_exceeded r ->
        Error
          (Printf.sprintf "%s abandoned (out of %s)" (tier_name tier)
             (Budget.resource_name r))
  in
  let explicit notes =
    let open Simcov_fsm in
    {
      sym_states = float_of_int (Fsm.n_reachable model);
      sym_transitions = float_of_int (Fsm.n_transitions model);
      tier = Explicit;
      degradations = List.rev notes;
    }
  in
  let degrade tier note =
    Obs.event "methodology.degrade" ~fields:(fun () ->
        [ ("tier", Json.String (tier_name tier)); ("note", Json.String note) ])
  in
  match attempt Partitioned_symbolic with
  | Ok f -> f
  | Error note1 -> (
      degrade Partitioned_symbolic note1;
      match attempt Monolithic_symbolic with
      | Ok f -> { f with degradations = [ note1 ] }
      | Error note2 ->
          degrade Monolithic_symbolic note2;
          (* the explicit tier allocates no BDD nodes: stop consulting
             the abandoned manager's live-node probe (budget.mli) *)
          Budget.set_node_probe budget None;
          explicit [ note2; note1 ])

type run_report = {
  config : Testmodel.config;
  lint_errors : Simcov_analysis.Diag.t list;
  fsm_lint : Simcov_analysis.Fsm_lint.report;
  model_states : int;
  model_transitions : int;
  symbolic : symbolic_figures;
  requirements : Requirements.report;
  certificate : (Completeness.certificate, Completeness.failure) result;
  tour_length : int;
  program_length : int;
  issued : int;
  bug_results : (string * bool) list;
  n_bugs_detected : int;
  bug_coverage : (string * Pipeline.bugs) Simcov_campaign.Campaign.report;
  fsm_fault_coverage : Simcov_coverage.Detect.report;
  timings : (string * float) list;
}

let campaigns_truncated r =
  r.fsm_fault_coverage.Simcov_coverage.Detect.truncated <> None
  || r.bug_coverage.Simcov_campaign.Campaign.truncated <> None

(* static-analysis front gate: sweep the netlist models before any
   symbolic effort is spent on them; only errors block a run *)
let lint_gate ~budget =
  let open Simcov_analysis in
  let impl = Control.build () in
  let test, _ = Control.derive_test_model () in
  let errors r = List.filter (fun d -> d.Diag.severity = Diag.Error) r.Lint.diags in
  errors (Lint.run ~budget ~name:"dlx-control" impl)
  @ errors (Lint.run ~budget ~name:"dlx-test" ~against:impl test)

let validate_dlx ?(config = Testmodel.default) ?(seed = 2026)
    ?(budget = Budget.unlimited) ?(reorder = `Off) ?lanes ?jobs () =
  let open Simcov_fsm in
  let rng = Simcov_util.Rng.create seed in
  (* per-figure wall clock: each phase is both recorded in the report
     (timings, in run order) and observed on a methodology.<phase>
     timer so it lands in the metrics snapshot *)
  let timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = Obs.span (Obs.timer ("methodology." ^ name)) f in
    timings := (name, Unix.gettimeofday () -. t0) :: !timings;
    r
  in
  let lint_errors = timed "lint" (fun () -> lint_gate ~budget) in
  Budget.check budget;
  let model = timed "tabulate" (fun () -> Fsm.tabulate (Testmodel.build config)) in
  Budget.check budget;
  (* FSM-level precondition gate (Theorem 1): certify strong
     connectivity, minimality and the ∀k bound on the machine the tour
     will be generated from. Warnings are recorded, not fatal; the CLI
     treats error-severity findings like lint_errors. *)
  let fsm_lint =
    timed "fsm_lint" (fun () ->
        Simcov_analysis.Fsm_lint.run ~budget ~name:"dlx-test" ~seed model)
  in
  Budget.check budget;
  let symbolic =
    timed "symbolic" (fun () -> symbolic_figures ~budget ~reorder model)
  in
  Budget.check budget;
  let requirements =
    timed "requirements" (fun () ->
        Requirements.check ~rng:(Simcov_util.Rng.split rng) model)
  in
  Budget.check budget;
  let certificate = timed "certificate" (fun () -> Completeness.certify model) in
  Budget.check budget;
  (* the tour itself: fall back to the greedy cover if the optimal
     solver is unavailable (cannot happen for these models, which are
     strongly connected) *)
  let word =
    timed "tour" (fun () ->
        match certificate with
        | Ok cert -> Completeness.padded_tour model cert
        | Error _ -> (
            match Simcov_testgen.Tour.greedy_transition_tour model with
            | Some t -> t.Simcov_testgen.Tour.word
            | None ->
                (Simcov_testgen.Tour.transition_cover model).Simcov_testgen.Tour.word))
  in
  Budget.check budget;
  let conc = timed "concretize" (fun () -> Testmodel.concretize config word) in
  (* the two fault campaigns are budget-aware themselves: exhaustion
     mid-campaign yields a truncated partial report instead of an
     exception, so no Budget.check separates them *)
  let bug_campaign =
    timed "bug_campaign" (fun () ->
        Validate.bug_campaign_tests ~budget ?jobs
          [
            Validate.test_program ~preload_regs:conc.Testmodel.preload_regs
              ~preload_mem:conc.Testmodel.preload_mem conc.Testmodel.program;
          ])
  in
  let fsm_fault_coverage =
    timed "fsm_campaign" (fun () ->
        let n_outputs =
          List.fold_left
            (fun acc (_, _, _, o) -> max acc (o + 1))
            1 (Fsm.transitions model)
        in
        let faults =
          Simcov_coverage.Fault.sample_transfer_faults rng model ~count:150
          @ Simcov_coverage.Fault.sample_output_faults rng model ~n_outputs ~count:150
        in
        Simcov_coverage.Detect.campaign ~budget ?lanes ?jobs model faults word)
  in
  {
    config;
    lint_errors;
    fsm_lint;
    model_states = Fsm.n_reachable model;
    model_transitions = Fsm.n_transitions model;
    symbolic;
    requirements;
    certificate;
    tour_length = List.length word;
    program_length = Array.length conc.Testmodel.program;
    issued = Array.length conc.Testmodel.issue_map;
    bug_results = bug_campaign.Validate.bug_results;
    n_bugs_detected = bug_campaign.Validate.n_detected;
    bug_coverage = bug_campaign.Validate.report;
    fsm_fault_coverage;
    timings = List.rev !timings;
  }

type ablation_report = {
  refined_transitions : int;
  abstract_transitions : int;
  refined_covered_by_abstract_tour : int;
  refined_tour_length : int;
  abstract_tour_length : int;
  quotient_conflict : bool;
  fault_coverage_abstract_tour : Simcov_coverage.Detect.report;
  fault_coverage_refined_tour : Simcov_coverage.Detect.report;
}

let ablation_dest_tracking ?(config = Testmodel.default) ?(seed = 2026) () =
  let open Simcov_fsm in
  let rng = Simcov_util.Rng.create seed in
  let refined = Fsm.tabulate (Testmodel.build config) in
  let abstract =
    Fsm.tabulate (Testmodel.build { config with Testmodel.track_dest = false })
  in
  let tour_of m =
    match Simcov_testgen.Tour.transition_tour m with
    | Some t -> t.Simcov_testgen.Tour.word
    | None -> invalid_arg "ablation: model not strongly connected"
  in
  let abstract_word = tour_of abstract in
  let refined_word = tour_of refined in
  (* both models share the same input alphabet, so the abstract tour
     replays directly on the refined model *)
  let covered = Simcov_coverage.Detect.transition_coverage refined abstract_word in
  let quotient_conflict =
    Result.is_error
      (Simcov_abstraction.Homomorphism.quotient refined (Testmodel.dest_merge_mapping config))
  in
  let n_outputs =
    List.fold_left (fun acc (_, _, _, o) -> max acc (o + 1)) 1 (Fsm.transitions refined)
  in
  let faults =
    Simcov_coverage.Fault.sample_transfer_faults rng refined ~count:150
    @ Simcov_coverage.Fault.sample_output_faults rng refined ~n_outputs ~count:150
  in
  {
    refined_transitions = Fsm.n_transitions refined;
    abstract_transitions = Fsm.n_transitions abstract;
    refined_covered_by_abstract_tour = covered;
    refined_tour_length = List.length refined_word;
    abstract_tour_length = List.length abstract_word;
    quotient_conflict;
    fault_coverage_abstract_tour = Simcov_coverage.Detect.campaign refined faults abstract_word;
    fault_coverage_refined_tour = Simcov_coverage.Detect.campaign refined faults refined_word;
  }

let pp_ablation_report ppf r =
  Format.fprintf ppf
    "@[<v>refined model: %d transitions (tour %d); dest-less model: %d transitions (tour %d)@,\
     abstract tour covers %d/%d refined transitions (%.1f%%)@,\
     quotient conflict: %b@,\
     fault coverage, abstract tour: %a@,\
     fault coverage, refined tour:  %a@]"
    r.refined_transitions r.refined_tour_length r.abstract_transitions
    r.abstract_tour_length r.refined_covered_by_abstract_tour r.refined_transitions
    (100.0 *. float_of_int r.refined_covered_by_abstract_tour
    /. float_of_int r.refined_transitions)
    r.quotient_conflict Simcov_coverage.Detect.pp_report r.fault_coverage_abstract_tour
    Simcov_coverage.Detect.pp_report r.fault_coverage_refined_tour

let pp_run_report ppf r =
  Format.fprintf ppf "@[<v>";
  (match r.lint_errors with
  | [] -> Format.fprintf ppf "static analysis: no errors@,"
  | errs ->
      Format.fprintf ppf "static analysis: %d error%s@," (List.length errs)
        (if List.length errs = 1 then "" else "s");
      List.iter
        (fun d -> Format.fprintf ppf "  %a@," Simcov_analysis.Diag.pp d)
        errs);
  Format.fprintf ppf "test model: %d states, %d transitions@," r.model_states
    r.model_transitions;
  (let module Fl = Simcov_analysis.Fsm_lint in
   let fl = r.fsm_lint in
   Format.fprintf ppf
     "fsm precondition gate: %d SCC%s, %d classes, %s; %d error%s, %d warning%s@,"
     fl.Fl.stats.Fl.n_sccs
     (if fl.Fl.stats.Fl.n_sccs = 1 then "" else "s")
     fl.Fl.stats.Fl.n_classes
     (match fl.Fl.stats.Fl.certified_k with
     | Some k -> Printf.sprintf "certified forall-%d-distinguishable" k
     | None -> "forall-k UNCERTIFIED")
     (Fl.count fl Simcov_analysis.Diag.Error)
     (if Fl.count fl Simcov_analysis.Diag.Error = 1 then "" else "s")
     (Fl.count fl Simcov_analysis.Diag.Warning)
     (if Fl.count fl Simcov_analysis.Diag.Warning = 1 then "" else "s");
   List.iter
     (fun d ->
       if d.Simcov_analysis.Diag.severity = Simcov_analysis.Diag.Error then
         Format.fprintf ppf "  %a@," Simcov_analysis.Diag.pp d)
     fl.Fl.diags);
  Format.fprintf ppf "state-space figures (%s): %.0f states, %.0f transitions@,"
    (tier_name r.symbolic.tier) r.symbolic.sym_states r.symbolic.sym_transitions;
  List.iter
    (fun note -> Format.fprintf ppf "  degraded: %s@," note)
    r.symbolic.degradations;
  Format.fprintf ppf "%a@," Requirements.pp_report r.requirements;
  (match r.certificate with
  | Ok c ->
      Format.fprintf ppf "certificate: forall-%d-distinguishable, tour length %d@," c.Completeness.k
        c.Completeness.tour_length
  | Error Completeness.Not_strongly_connected ->
      Format.fprintf ppf "certificate: FAILED (not strongly connected)@,"
  | Error (Completeness.Indistinguishable_pair (p, q)) ->
      Format.fprintf ppf "certificate: FAILED (states %d and %d not distinguishable)@," p q);
  Format.fprintf ppf "tour: %d inputs -> program of %d instructions (%d issued)@,"
    r.tour_length r.program_length r.issued;
  Format.fprintf ppf "FSM fault coverage: %a@," Simcov_coverage.Detect.pp_report
    r.fsm_fault_coverage;
  Format.fprintf ppf "pipeline bugs detected: %d/%d" r.n_bugs_detected
    (List.length r.bug_results);
  (match r.bug_coverage.Simcov_campaign.Campaign.truncated with
  | None -> ()
  | Some res ->
      Format.fprintf ppf " [truncated: out of %s, %d bug%s not run]"
        (Budget.resource_name res) r.bug_coverage.Simcov_campaign.Campaign.skipped
        (if r.bug_coverage.Simcov_campaign.Campaign.skipped = 1 then "" else "s"));
  Format.fprintf ppf "@,";
  List.iter
    (fun (name, det) ->
      Format.fprintf ppf "  %-24s %s@," name (if det then "DETECTED" else "missed"))
    r.bug_results;
  Format.fprintf ppf "phase wall times:";
  List.iter
    (fun (name, s) -> Format.fprintf ppf "@,  %-24s %.3f s" name s)
    r.timings;
  Format.fprintf ppf "@]"
