(** Unified observability: metrics and tracing for the simulation
    engines.

    One process-wide registry of named metrics — monotonic {!counter}s,
    last-value {!gauge}s and accumulating wall-clock {!timer}s — plus
    an optional JSONL trace sink for per-event detail. The engines
    (BDD kernel, symbolic traversal, campaign driver) increment these
    unconditionally; the registry is rendered on demand as one
    [simcov-metrics/1] JSON snapshot.

    {b Overhead contract.} The layer must be near-free when nobody is
    looking:
    - {!incr} / {!add} / {!set} / {!set_max} are a single atomic
      read-modify-write on a preallocated cell — no allocation, no
      lock, no branch on an "enabled" flag — plus the cell resolution:
      one domain-local read and a pointer-equality scan of the
      handle's (tiny, immutable) registry cache. These are safe in the
      hottest loops (BDD cache probes).
    - {!observe} adds a float to an accumulator; {!span} additionally
      pays two clock reads. Use them at batch/iteration granularity,
      not per node.
    - {!event} and the [?fields] thunks of {!span} are lazy: with no
      sink installed the cost is one [ref] load and a branch; field
      lists are only computed (and JSON only rendered) when a sink is
      present.

    Metric state lives in a {!registry}. The process has one
    {!default_registry} — the one-shot CLI path, where callers that
    want a per-command view call {!reset} first — and a long-running
    service creates one labeled registry per job ({!registry}) and
    runs the job under it ({!with_registry}), so two concurrent jobs
    never interleave counters in one [simcov-metrics/1] snapshot.
    Handles stay static: the {e current} registry is domain-local, and
    a handle resolves to the current registry's cell on use through a
    lock-free one-or-two-entry cache (a pointer-equality scan of an
    immutable list), so scoping costs a few ns on the hot paths and
    nothing changes for engines.

    {b Domain safety.} A registry may be shared by every domain of the
    process. Counters and gauges are [Atomic]-backed, so concurrent
    {!incr} / {!add} / {!set_max} from sharded campaign workers lose
    no updates and take no lock; timer accumulation, cell/handle
    creation, trace emission and {!snapshot} serialize on one internal
    mutex (they run at batch granularity, where a lock is free). A
    snapshot taken after the workers are joined therefore reflects
    every increment exactly once. The current registry is per-domain
    ([Domain.DLS]): a freshly spawned domain starts in the default
    registry, so drivers that shard scoped work across domains install
    the parent's registry in the worker body (the campaign driver
    does). *)

type counter
type gauge
type timer

(** {1 Registries} *)

type registry
(** An isolated metric/trace namespace: its own counter/gauge/timer
    cells and its own trace sink. *)

val default_registry : registry
(** The process-wide default — what every call operates on unless a
    scope is installed. *)

val registry : label:string -> registry
(** A fresh, empty, labeled registry (e.g. one per service job). *)

val registry_label : registry -> string
(** The label given at creation; [""] for {!default_registry}. *)

val current : unit -> registry
(** This domain's current registry. *)

val with_registry : registry -> (unit -> 'a) -> 'a
(** [with_registry r f] runs [f] with [r] as this domain's current
    registry, restoring the previous one afterwards (also on raise).
    Every {!incr} / {!event} / {!snapshot} / {!set_sink} inside [f]
    operates on [r]. *)

val release : registry -> unit
(** Drop a retired registry's cells from every handle's resolution
    cache so a service creating one registry per job does not grow
    handle caches without bound. Call it once the registry will no
    longer be used; no-op on {!default_registry}. *)

val counter : string -> counter
(** [counter name] returns the registered counter for [name], creating
    it (at zero) on first use. Names are conventionally dotted paths,
    e.g. ["bdd.cache.and.hits"]. *)

val gauge : string -> gauge
val timer : string -> timer

val incr : counter -> unit
val add : counter -> int -> unit

val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** Keep the running maximum: [set_max g v] is [set g v] only when [v]
    exceeds the current value (atomically, via compare-and-set). *)

val count : counter -> int
(** Current counter value. *)

val value : gauge -> int
(** Current gauge value. *)

val observe : timer -> float -> unit
(** Record one span of the given duration (seconds). *)

val spans : timer -> int
(** Number of observed spans. *)

val total_s : timer -> float
(** Accumulated wall time over all observed spans. *)

val span :
  timer ->
  ?fields:(unit -> (string * Simcov_util.Json.t) list) ->
  (unit -> 'a) ->
  'a
(** [span t f] times [f ()], {!observe}s the duration on [t], and — if
    a trace sink is installed — emits a trace event named [t.t_name]
    with a [dur_s] field plus [fields ()]. The duration is recorded
    even when [f] raises. *)

(** {1 Tracing}

    A trace sink receives one minified JSON object per line:
    [{"ev": <name>, "t_s": <seconds since sink install>, ...fields}].
    Spans add ["dur_s"]. *)

val set_sink : (string -> unit) option -> unit
(** Install ([Some emit]) or remove ([None]) the current registry's
    trace sink. Installing resets that registry's trace clock. *)

val tracing : unit -> bool

val event :
  ?fields:(unit -> (string * Simcov_util.Json.t) list) -> string -> unit
(** Emit a trace event. Free (one branch) when no sink is installed;
    [fields] is never called in that case. *)

(** {1 Snapshot} *)

val snapshot : ?extra:(string * Simcov_util.Json.t) list -> unit -> Simcov_util.Json.t
(** The [simcov-metrics/1] snapshot: an object with [schema],
    [wall_clock_s] (seconds since process start or last {!reset}),
    [counters] (name → int), [gauges] (name → int) and [timers]
    (name → [{count, total_s}]), each sorted by name. [extra] fields
    are appended at the top level. Every metric ever registered in the
    process appears, including untouched ones (at zero), so the field
    set is stable for a given binary. *)

val reset : unit -> unit
(** Zero every metric of the current registry and restart its snapshot
    clock. Does not touch the trace sink. *)
