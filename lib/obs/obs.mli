(** Unified observability: metrics and tracing for the simulation
    engines.

    One process-wide registry of named metrics — monotonic {!counter}s,
    last-value {!gauge}s and accumulating wall-clock {!timer}s — plus
    an optional JSONL trace sink for per-event detail. The engines
    (BDD kernel, symbolic traversal, campaign driver) increment these
    unconditionally; the registry is rendered on demand as one
    [simcov-metrics/1] JSON snapshot.

    {b Overhead contract.} The layer must be near-free when nobody is
    looking:
    - {!incr} / {!add} / {!set} / {!set_max} are single atomic
      read-modify-writes on a preallocated cell — no allocation, no
      lock, no branch on an "enabled" flag. These are safe in the
      hottest loops (BDD cache probes).
    - {!observe} adds a float to an accumulator; {!span} additionally
      pays two clock reads. Use them at batch/iteration granularity,
      not per node.
    - {!event} and the [?fields] thunks of {!span} are lazy: with no
      sink installed the cost is one [ref] load and a branch; field
      lists are only computed (and JSON only rendered) when a sink is
      present.

    Metric state is global to the process: callers that want a
    per-command view call {!reset} first (the CLI does, once per
    subcommand).

    {b Domain safety.} The registry is shared by every domain of the
    process. Counters and gauges are [Atomic]-backed, so concurrent
    {!incr} / {!add} / {!set_max} from sharded campaign workers lose
    no updates and take no lock; timer accumulation, registry
    creation, trace emission and {!snapshot} serialize on one internal
    mutex (they run at batch granularity, where a lock is free). A
    snapshot taken after the workers are joined therefore reflects
    every increment exactly once. *)

type counter
type gauge
type timer

val counter : string -> counter
(** [counter name] returns the registered counter for [name], creating
    it (at zero) on first use. Names are conventionally dotted paths,
    e.g. ["bdd.cache.and.hits"]. *)

val gauge : string -> gauge
val timer : string -> timer

val incr : counter -> unit
val add : counter -> int -> unit

val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** Keep the running maximum: [set_max g v] is [set g v] only when [v]
    exceeds the current value (atomically, via compare-and-set). *)

val count : counter -> int
(** Current counter value. *)

val value : gauge -> int
(** Current gauge value. *)

val observe : timer -> float -> unit
(** Record one span of the given duration (seconds). *)

val spans : timer -> int
(** Number of observed spans. *)

val total_s : timer -> float
(** Accumulated wall time over all observed spans. *)

val span :
  timer ->
  ?fields:(unit -> (string * Simcov_util.Json.t) list) ->
  (unit -> 'a) ->
  'a
(** [span t f] times [f ()], {!observe}s the duration on [t], and — if
    a trace sink is installed — emits a trace event named [t.t_name]
    with a [dur_s] field plus [fields ()]. The duration is recorded
    even when [f] raises. *)

(** {1 Tracing}

    A trace sink receives one minified JSON object per line:
    [{"ev": <name>, "t_s": <seconds since sink install>, ...fields}].
    Spans add ["dur_s"]. *)

val set_sink : (string -> unit) option -> unit
(** Install ([Some emit]) or remove ([None]) the process-wide trace
    sink. Installing resets the trace clock. *)

val tracing : unit -> bool

val event :
  ?fields:(unit -> (string * Simcov_util.Json.t) list) -> string -> unit
(** Emit a trace event. Free (one branch) when no sink is installed;
    [fields] is never called in that case. *)

(** {1 Snapshot} *)

val snapshot : ?extra:(string * Simcov_util.Json.t) list -> unit -> Simcov_util.Json.t
(** The [simcov-metrics/1] snapshot: an object with [schema],
    [wall_clock_s] (seconds since process start or last {!reset}),
    [counters] (name → int), [gauges] (name → int) and [timers]
    (name → [{count, total_s}]), each sorted by name. [extra] fields
    are appended at the top level. Every metric ever registered in the
    process appears, including untouched ones (at zero), so the field
    set is stable for a given binary. *)

val reset : unit -> unit
(** Zero every registered metric and restart the snapshot clock. Does
    not touch the trace sink. *)
