module Json = Simcov_util.Json

(* ---- registries ----

   A registry is one isolated metric/trace namespace. The process
   always has the [default] registry (the one-shot CLI path); a
   long-running service creates one labeled registry per job and runs
   the job under it, so two concurrent jobs never interleave counters
   in one snapshot. The current registry is domain-local: engines keep
   incrementing the same static handles, and the handle resolves to a
   per-registry cell on use. *)

type timer_cell = { mutable tc_spans : int; mutable tc_total_s : float }

type registry = {
  label : string;
  r_counters : (string, int Atomic.t) Hashtbl.t;
  r_gauges : (string, int Atomic.t) Hashtbl.t;
  r_timers : (string, timer_cell) Hashtbl.t;
  mutable r_sink : (string -> unit) option;
  mutable r_trace_epoch : float;
  mutable r_clock_epoch : float;
}

(* One process-wide lock for every cold path: handle/cell creation,
   timer accumulation, trace emission, snapshot/reset, release. The hot
   paths (incr/add/set/set_max) are lock-free atomics so sharded
   campaign domains never serialize on a counter bump. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let make_registry label =
  {
    label;
    r_counters = Hashtbl.create 64;
    r_gauges = Hashtbl.create 32;
    r_timers = Hashtbl.create 32;
    r_sink = None;
    r_trace_epoch = Unix.gettimeofday ();
    r_clock_epoch = Unix.gettimeofday ();
  }

let default_registry = make_registry ""
let registry ~label = make_registry label
let registry_label r = r.label

(* the current registry is per-domain: a campaign worker spawned under
   a scoped job inherits the scope explicitly (the driver installs the
   parent's registry in the worker body) *)
let current_key : registry Domain.DLS.key =
  Domain.DLS.new_key (fun () -> default_registry)

let current () = Domain.DLS.get current_key

let with_registry r f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

(* ---- handles ----

   A handle is the static object an engine holds ([Obs.counter "x"] at
   module init). It resolves to the current registry's cell through a
   copy-on-write (registry, cell) assoc read without the lock: the
   common case (one or two registries ever seen by this handle) is a
   pointer-equality scan of a tiny immutable list, a few ns on top of
   the atomic bump. *)

type counter = {
  c_name : string;
  mutable c_cells : (registry * int Atomic.t) list;
}

type gauge = {
  g_name : string;
  mutable g_cells : (registry * int Atomic.t) list;
}

type timer = {
  t_name : string;
  mutable t_cells : (registry * timer_cell) list;
}

(* global handle tables: same name -> same handle, and the name set of
   a snapshot is stable for a given binary (every metric ever
   registered appears, untouched ones at zero) *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let intern tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      locked (fun () ->
          (* re-check under the lock: another domain may have raced us *)
          match Hashtbl.find_opt tbl name with
          | Some v -> v
          | None ->
              let v = make () in
              Hashtbl.add tbl name v;
              v)

let counter name = intern counters name (fun () -> { c_name = name; c_cells = [] })
let gauge name = intern gauges name (fun () -> { g_name = name; g_cells = [] })
let timer name = intern timers name (fun () -> { t_name = name; t_cells = [] })

let rec assq_phys r = function
  | [] -> None
  | (r', v) :: tl -> if r' == r then Some v else assq_phys r tl

(* cell resolution: lock-free fast path over the COW list, lock-guarded
   slow path that creates the cell in the registry and publishes the
   extended list (cons of immutable pairs — readers racing the publish
   see either list, both correct) *)
let c_cell h =
  let r = current () in
  match assq_phys r h.c_cells with
  | Some c -> c
  | None ->
      locked (fun () ->
          match assq_phys r h.c_cells with
          | Some c -> c
          | None ->
              let c =
                match Hashtbl.find_opt r.r_counters h.c_name with
                | Some c -> c
                | None ->
                    let c = Atomic.make 0 in
                    Hashtbl.add r.r_counters h.c_name c;
                    c
              in
              h.c_cells <- (r, c) :: h.c_cells;
              c)

let g_cell h =
  let r = current () in
  match assq_phys r h.g_cells with
  | Some c -> c
  | None ->
      locked (fun () ->
          match assq_phys r h.g_cells with
          | Some c -> c
          | None ->
              let c =
                match Hashtbl.find_opt r.r_gauges h.g_name with
                | Some c -> c
                | None ->
                    let c = Atomic.make 0 in
                    Hashtbl.add r.r_gauges h.g_name c;
                    c
              in
              h.g_cells <- (r, c) :: h.g_cells;
              c)

let t_cell h =
  let r = current () in
  match assq_phys r h.t_cells with
  | Some c -> c
  | None ->
      locked (fun () ->
          match assq_phys r h.t_cells with
          | Some c -> c
          | None ->
              let c =
                match Hashtbl.find_opt r.r_timers h.t_name with
                | Some c -> c
                | None ->
                    let c = { tc_spans = 0; tc_total_s = 0.0 } in
                    Hashtbl.add r.r_timers h.t_name c;
                    c
              in
              h.t_cells <- (r, c) :: h.t_cells;
              c)

let release r =
  if r != default_registry then
    locked (fun () ->
        let drop_c (h : counter) =
          h.c_cells <- List.filter (fun (r', _) -> r' != r) h.c_cells
        in
        let drop_g (h : gauge) =
          h.g_cells <- List.filter (fun (r', _) -> r' != r) h.g_cells
        in
        let drop_t (h : timer) =
          h.t_cells <- List.filter (fun (r', _) -> r' != r) h.t_cells
        in
        Hashtbl.iter (fun _ h -> drop_c h) counters;
        Hashtbl.iter (fun _ h -> drop_g h) gauges;
        Hashtbl.iter (fun _ h -> drop_t h) timers)

let[@inline] incr c = ignore (Atomic.fetch_and_add (c_cell c) 1)
let[@inline] add c n = ignore (Atomic.fetch_and_add (c_cell c) n)
let[@inline] set g v = Atomic.set (g_cell g) v

let set_max g v =
  let cell = g_cell g in
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

let count c = Atomic.get (c_cell c)
let value g = Atomic.get (g_cell g)

let observe t dt =
  let c = t_cell t in
  locked (fun () ->
      c.tc_spans <- c.tc_spans + 1;
      c.tc_total_s <- c.tc_total_s +. dt)

let spans t =
  let c = t_cell t in
  locked (fun () -> c.tc_spans)

let total_s t =
  let c = t_cell t in
  locked (fun () -> c.tc_total_s)

(* ---- tracing ---- *)

let set_sink s =
  let r = current () in
  (match s with Some _ -> r.r_trace_epoch <- Unix.gettimeofday () | None -> ());
  r.r_sink <- s

let tracing () = (current ()).r_sink <> None

let emit r name extra_fields fields =
  match r.r_sink with
  | None -> ()
  | Some emit ->
      let t_s = Unix.gettimeofday () -. r.r_trace_epoch in
      let line =
        Json.to_string ~indent:0
          (Json.Obj
             (("ev", Json.String name)
             :: ("t_s", Json.Float t_s)
             :: (extra_fields @ fields ())))
      in
      (* serialize writers: trace lines from concurrent domains must
         not interleave inside one JSONL record *)
      locked (fun () -> emit line)

let event ?(fields = fun () -> []) name =
  let r = current () in
  if r.r_sink <> None then emit r name [] fields

let span t ?(fields = fun () -> []) f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      observe t dt;
      let r = current () in
      if r.r_sink <> None then emit r t.t_name [ ("dur_s", Json.Float dt) ] fields)
    f

(* ---- snapshot ---- *)

let sorted_names tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let snapshot ?(extra = []) () =
  let r = current () in
  locked (fun () ->
      let counter_fields =
        List.map
          (fun name ->
            let v =
              match Hashtbl.find_opt r.r_counters name with
              | Some c -> Atomic.get c
              | None -> 0
            in
            (name, Json.Int v))
          (sorted_names counters)
      in
      let gauge_fields =
        List.map
          (fun name ->
            let v =
              match Hashtbl.find_opt r.r_gauges name with
              | Some g -> Atomic.get g
              | None -> 0
            in
            (name, Json.Int v))
          (sorted_names gauges)
      in
      let timer_fields =
        List.map
          (fun name ->
            let s, tt =
              match Hashtbl.find_opt r.r_timers name with
              | Some t -> (t.tc_spans, t.tc_total_s)
              | None -> (0, 0.0)
            in
            ( name,
              Json.Obj
                [ ("count", Json.Int s); ("total_s", Json.Float tt) ] ))
          (sorted_names timers)
      in
      Json.Obj
        ([
           ("schema", Json.String "simcov-metrics/1");
           ("wall_clock_s", Json.Float (Unix.gettimeofday () -. r.r_clock_epoch));
           ("counters", Json.Obj counter_fields);
           ("gauges", Json.Obj gauge_fields);
           ("timers", Json.Obj timer_fields);
         ]
        @ extra))

let reset () =
  let r = current () in
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) r.r_counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0) r.r_gauges;
      Hashtbl.iter
        (fun _ t ->
          t.tc_spans <- 0;
          t.tc_total_s <- 0.0)
        r.r_timers;
      r.r_clock_epoch <- Unix.gettimeofday ())
