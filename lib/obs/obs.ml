module Json = Simcov_util.Json

type counter = int Atomic.t
type gauge = int Atomic.t

type timer = {
  t_name : string;
  mutable spans : int;
  mutable total_s : float;
}

(* One process-wide lock for every cold path: registry creation,
   timer accumulation, trace emission, snapshot/reset. The hot paths
   (incr/add/set/set_max) are lock-free atomics so sharded campaign
   domains never serialize on a counter bump. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Registries keyed by name. Metrics are created once (typically at
   module-init of the instrumented engine) and live for the process;
   snapshot output is sorted by name so it does not depend on link or
   creation order. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let intern tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      locked (fun () ->
          (* re-check under the lock: another domain may have raced us *)
          match Hashtbl.find_opt tbl name with
          | Some v -> v
          | None ->
              let v = make () in
              Hashtbl.add tbl name v;
              v)

let counter name = intern counters name (fun () -> Atomic.make 0)
let gauge name = intern gauges name (fun () -> Atomic.make 0)

let timer name =
  intern timers name (fun () -> { t_name = name; spans = 0; total_s = 0.0 })

let[@inline] incr c = ignore (Atomic.fetch_and_add c 1)
let[@inline] add c n = ignore (Atomic.fetch_and_add c n)
let[@inline] set g v = Atomic.set g v

let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

let count c = Atomic.get c
let value g = Atomic.get g

let observe t dt =
  locked (fun () ->
      t.spans <- t.spans + 1;
      t.total_s <- t.total_s +. dt)

let spans t = locked (fun () -> t.spans)
let total_s t = locked (fun () -> t.total_s)

(* ---- tracing ---- *)

let sink : (string -> unit) option ref = ref None
let trace_epoch = ref (Unix.gettimeofday ())

let set_sink s =
  (match s with Some _ -> trace_epoch := Unix.gettimeofday () | None -> ());
  sink := s

let tracing () = !sink <> None

let emit name extra_fields fields =
  match !sink with
  | None -> ()
  | Some emit ->
      let t_s = Unix.gettimeofday () -. !trace_epoch in
      let line =
        Json.to_string ~indent:0
          (Json.Obj
             (("ev", Json.String name)
             :: ("t_s", Json.Float t_s)
             :: (extra_fields @ fields ())))
      in
      (* serialize writers: trace lines from concurrent domains must
         not interleave inside one JSONL record *)
      locked (fun () -> emit line)

let event ?(fields = fun () -> []) name =
  if !sink <> None then emit name [] fields

let span t ?(fields = fun () -> []) f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      observe t dt;
      if !sink <> None then emit t.t_name [ ("dur_s", Json.Float dt) ] fields)
    f

(* ---- snapshot ---- *)

let clock_epoch = ref (Unix.gettimeofday ())

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot ?(extra = []) () =
  locked (fun () ->
      Json.Obj
        ([
           ("schema", Json.String "simcov-metrics/1");
           ("wall_clock_s", Json.Float (Unix.gettimeofday () -. !clock_epoch));
           ( "counters",
             Json.Obj
               (List.map
                  (fun (k, c) -> (k, Json.Int (Atomic.get c)))
                  (sorted counters)) );
           ( "gauges",
             Json.Obj
               (List.map
                  (fun (k, g) -> (k, Json.Int (Atomic.get g)))
                  (sorted gauges)) );
           ( "timers",
             Json.Obj
               (List.map
                  (fun (k, t) ->
                    ( k,
                      Json.Obj
                        [
                          ("count", Json.Int t.spans);
                          ("total_s", Json.Float t.total_s);
                        ] ))
                  (sorted timers)) );
         ]
        @ extra))

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0) gauges;
      Hashtbl.iter
        (fun _ t ->
          t.spans <- 0;
          t.total_s <- 0.0)
        timers;
      clock_epoch := Unix.gettimeofday ())
