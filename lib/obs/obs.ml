module Json = Simcov_util.Json

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : int }

type timer = {
  t_name : string;
  mutable spans : int;
  mutable total_s : float;
}

(* Registries keyed by name. Metrics are created once (typically at
   module-init of the instrumented engine) and live for the process;
   snapshot output is sorted by name so it does not depend on link or
   creation order. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add counters name c;
      c

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; value = 0 } in
      Hashtbl.add gauges name g;
      g

let timer name =
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
      let t = { t_name = name; spans = 0; total_s = 0.0 } in
      Hashtbl.add timers name t;
      t

let[@inline] incr c = c.count <- c.count + 1
let[@inline] add c n = c.count <- c.count + n
let[@inline] set g v = g.value <- v
let[@inline] set_max g v = if v > g.value then g.value <- v

let observe t dt =
  t.spans <- t.spans + 1;
  t.total_s <- t.total_s +. dt

(* ---- tracing ---- *)

let sink : (string -> unit) option ref = ref None
let trace_epoch = ref (Unix.gettimeofday ())

let set_sink s =
  (match s with Some _ -> trace_epoch := Unix.gettimeofday () | None -> ());
  sink := s

let tracing () = !sink <> None

let emit name extra_fields fields =
  match !sink with
  | None -> ()
  | Some emit ->
      let t_s = Unix.gettimeofday () -. !trace_epoch in
      emit
        (Json.to_string ~indent:0
           (Json.Obj
              (("ev", Json.String name)
              :: ("t_s", Json.Float t_s)
              :: (extra_fields @ fields ()))))

let event ?(fields = fun () -> []) name =
  if !sink <> None then emit name [] fields

let span t ?(fields = fun () -> []) f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      observe t dt;
      if !sink <> None then emit t.t_name [ ("dur_s", Json.Float dt) ] fields)
    f

(* ---- snapshot ---- *)

let clock_epoch = ref (Unix.gettimeofday ())

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot ?(extra = []) () =
  Json.Obj
    ([
       ("schema", Json.String "simcov-metrics/1");
       ("wall_clock_s", Json.Float (Unix.gettimeofday () -. !clock_epoch));
       ( "counters",
         Json.Obj (List.map (fun (k, c) -> (k, Json.Int c.count)) (sorted counters))
       );
       ( "gauges",
         Json.Obj (List.map (fun (k, g) -> (k, Json.Int g.value)) (sorted gauges))
       );
       ( "timers",
         Json.Obj
           (List.map
              (fun (k, t) ->
                ( k,
                  Json.Obj
                    [ ("count", Json.Int t.spans); ("total_s", Json.Float t.total_s) ]
                ))
              (sorted timers)) );
     ]
    @ extra)

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter (fun _ g -> g.value <- 0) gauges;
  Hashtbl.iter
    (fun _ t ->
      t.spans <- 0;
      t.total_s <- 0.0)
    timers;
  clock_epoch := Unix.gettimeofday ()
