open Simcov_fsm

type t =
  | Transfer of { state : int; input : int; wrong_next : int }
  | Output of { state : int; input : int; wrong_output : int }
  | Conditional_output of {
      state : int;
      input : int;
      wrong_output : int;
      prev : int * int;
    }

let pp ppf = function
  | Transfer { state; input; wrong_next } ->
      Format.fprintf ppf "transfer(s%d, i%d -> s%d)" state input wrong_next
  | Output { state; input; wrong_output } ->
      Format.fprintf ppf "output(s%d, i%d => %d)" state input wrong_output
  | Conditional_output { state; input; wrong_output; prev = ps, pi } ->
      Format.fprintf ppf "cond-output(s%d, i%d => %d after (s%d, i%d))" state input
        wrong_output ps pi

let equal = ( = )

let key = function
  | Transfer { state; input; wrong_next } ->
      Printf.sprintf "t:%d:%d:%d" state input wrong_next
  | Output { state; input; wrong_output } ->
      Printf.sprintf "o:%d:%d:%d" state input wrong_output
  | Conditional_output { state; input; wrong_output; prev = ps, pi } ->
      Printf.sprintf "c:%d:%d:%d:%d:%d" state input wrong_output ps pi

let to_json fault =
  let open Simcov_util.Json in
  match fault with
  | Transfer { state; input; wrong_next } ->
      Obj
        [
          ("kind", String "transfer");
          ("state", Int state);
          ("input", Int input);
          ("wrong_next", Int wrong_next);
        ]
  | Output { state; input; wrong_output } ->
      Obj
        [
          ("kind", String "output");
          ("state", Int state);
          ("input", Int input);
          ("wrong_output", Int wrong_output);
        ]
  | Conditional_output { state; input; wrong_output; prev = ps, pi } ->
      Obj
        [
          ("kind", String "conditional_output");
          ("state", Int state);
          ("input", Int input);
          ("wrong_output", Int wrong_output);
          ("prev_state", Int ps);
          ("prev_input", Int pi);
        ]

let apply (m : Fsm.t) fault =
  match fault with
  | Transfer { state; input; wrong_next } ->
      {
        m with
        Fsm.next = (fun s i -> if s = state && i = input then wrong_next else m.Fsm.next s i);
      }
  | Output { state; input; wrong_output } ->
      {
        m with
        Fsm.output =
          (fun s i -> if s = state && i = input then wrong_output else m.Fsm.output s i);
      }
  | Conditional_output { state; input; wrong_output; prev } ->
      (* enlarge the state space with one bit of history: was the
         previous transition [prev]? *)
      let proj s = s / 2 and hist s = s land 1 = 1 in
      {
        m with
        Fsm.n_states = 2 * m.Fsm.n_states;
        reset = 2 * m.Fsm.reset;
        valid = (fun s i -> m.Fsm.valid (proj s) i);
        next =
          (fun s i ->
            let base = m.Fsm.next (proj s) i in
            (2 * base) + if (proj s, i) = prev then 1 else 0);
        output =
          (fun s i ->
            if proj s = state && i = input && hist s then wrong_output
            else m.Fsm.output (proj s) i);
        state_name = (fun s -> m.Fsm.state_name (proj s) ^ if hist s then "^" else "");
      }

let apply_all m faults = List.fold_left apply m faults

let site = function
  | Transfer { state; input; _ }
  | Output { state; input; _ }
  | Conditional_output { state; input; _ } ->
      (state, input)

let is_uniform_kind = function
  | Transfer _ | Output _ -> true
  | Conditional_output _ -> false

let is_effective (m : Fsm.t) fault =
  match fault with
  | Transfer { state; input; wrong_next } ->
      m.Fsm.valid state input && m.Fsm.next state input <> wrong_next
  | Output { state; input; wrong_output } ->
      m.Fsm.valid state input && m.Fsm.output state input <> wrong_output
  | Conditional_output { state; input; wrong_output; prev = ps, pi } ->
      m.Fsm.valid state input
      && m.Fsm.output state input <> wrong_output
      && m.Fsm.valid ps pi
      && m.Fsm.next ps pi = state

let all_output_faults ?(wrong = succ) m =
  List.map
    (fun (s, i, _, o) -> Output { state = s; input = i; wrong_output = wrong o })
    (Fsm.transitions m)

let all_transfer_faults m =
  let seen = Fsm.reachable m in
  let states = ref [] in
  Array.iteri (fun s r -> if r then states := s :: !states) seen;
  let states = !states in
  List.concat_map
    (fun (s, i, s', _) ->
      List.filter_map
        (fun d -> if d = s' then None else Some (Transfer { state = s; input = i; wrong_next = d }))
        states)
    (Fsm.transitions m)

let sample_transfer_faults rng m ~count =
  let transitions = Array.of_list (Fsm.transitions m) in
  let seen = Fsm.reachable m in
  let states = ref [] in
  Array.iteri (fun s r -> if r then states := s :: !states) seen;
  let states = Array.of_list !states in
  if Array.length transitions = 0 || Array.length states < 2 then []
  else begin
    let picked = Hashtbl.create count in
    let budget = count * 20 in
    let rec go n attempts acc =
      if n >= count || attempts >= budget then List.rev acc
      else begin
        let s, i, s', _ = Simcov_util.Rng.pick rng transitions in
        let d = Simcov_util.Rng.pick rng states in
        if d <> s' && not (Hashtbl.mem picked (s, i, d)) then begin
          Hashtbl.add picked (s, i, d) ();
          go (n + 1) (attempts + 1)
            (Transfer { state = s; input = i; wrong_next = d } :: acc)
        end
        else go n (attempts + 1) acc
      end
    in
    go 0 0 []
  end

let sample_output_faults rng m ~n_outputs ~count =
  let transitions = Array.of_list (Fsm.transitions m) in
  if Array.length transitions = 0 || n_outputs < 2 then []
  else begin
    let picked = Hashtbl.create count in
    let budget = count * 20 in
    let rec go n attempts acc =
      if n >= count || attempts >= budget then List.rev acc
      else begin
        let s, i, _, o = Simcov_util.Rng.pick rng transitions in
        let w = Simcov_util.Rng.int rng n_outputs in
        if w <> o && not (Hashtbl.mem picked (s, i, w)) then begin
          Hashtbl.add picked (s, i, w) ();
          go (n + 1) (attempts + 1) (Output { state = s; input = i; wrong_output = w } :: acc)
        end
        else go n (attempts + 1) acc
      end
    in
    go 0 0 []
  end
