open Simcov_fsm
module Campaign = Simcov_campaign.Campaign
module Obs = Simcov_obs.Obs

let c_lanes_diverged = Obs.counter "campaign.lanes_diverged"

type verdict = Campaign.verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;
  excite_step : int option;
}

let run_verdict (golden : Fsm.t) fault word =
  let mutant = Fault.apply golden fault in
  let fsite = Fault.site fault in
  let rec go step sg sm excite detect word =
    match word with
    | [] -> (excite, detect)
    | i :: rest -> (
        let vg = golden.Fsm.valid sg i and vm = mutant.Fsm.valid sm i in
        (* excitation is a property of the golden path alone, so it must
           be recorded even when this very step is the detecting
           validity mismatch *)
        let excite =
          if vg && (sg, i) = fsite && excite = None then Some step else excite
        in
        if vg <> vm then (excite, Some (Option.value detect ~default:step))
        else if not vg then (excite, detect) (* word invalid from here; stop *)
        else
          let og = golden.Fsm.output sg i and om = mutant.Fsm.output sm i in
          if og <> om then (excite, Some step)
          else
            match detect with
            | Some _ -> (excite, detect)
            | None ->
                go (step + 1) (golden.Fsm.next sg i) (mutant.Fsm.next sm i) excite detect
                  rest)
  in
  let excite_step, detect_step =
    go 0 golden.Fsm.reset mutant.Fsm.reset None None word
  in
  {
    detected = detect_step <> None;
    excited = excite_step <> None;
    detect_step;
    excite_step;
  }

let detects golden fault word = (run_verdict golden fault word).detected

type 'f campaign_report = 'f Campaign.report = {
  backend : string;
  total : int;
  effective : int;
  excited : int;
  detected : int;
  missed : 'f list;
  skipped : int;
  truncated : Simcov_util.Budget.resource option;
  shard_failures : Campaign.shard_failure list;
}

type report = Fault.t campaign_report

let backend_name = "fsm-fault"

(* The bit-parallel FSM-fault backend. One golden pass per stimulus
   word evaluates up to [Sys.int_size] mutants at once, one per int bit
   lane. Mutant trajectories are tracked by difference from the golden
   trajectory:

   - output and conditional-output lanes never leave the golden
     trajectory, so they need no per-lane state at all — they detect
     the moment the golden run traverses their site (with the required
     history, for conditional lanes);
   - a transfer lane is "diverged" once its mutant's state differs from
     the golden state; only diverged lanes pay for a per-lane scalar
     step, and they rejoin the cheap converged set on silent
     re-convergence (Definition 4's masking window closing). *)
module Fsm_backend = struct
  type ctx = { m : Fsm.t; tab : Fsm.tables }
  type fault = Fault.t
  type stim = int

  let name = backend_name
  let max_lanes = Sys.int_size
  let effective ctx f = Fault.is_effective ctx.m f

  type batch = {
    tab : Fsm.tables;
    site : int array;  (* lane -> faulted (state * k + input) *)
    wrong : int array;  (* lane -> wrong next state / wrong output *)
    cprev : int array;  (* conditional lanes: required previous transition *)
    site_lanes : (int, int) Hashtbl.t;  (* transition -> lane set faulted there *)
    out_mask : int;
    tr_mask : int;
    cond_mask : int;
    mstate : int array;  (* per-lane mutant state, meaningful when diverged *)
    mutable diverged : int;
    mutable sg : int;  (* golden state *)
    mutable gprev : int;  (* previous golden transition, -1 at reset *)
  }

  let start (ctx : ctx) faults =
    let tab = ctx.tab in
    let k = tab.Fsm.tab_inputs in
    let n = Array.length faults in
    let site = Array.make n 0 and wrong = Array.make n 0 in
    let cprev = Array.make n (-1) in
    let site_lanes = Hashtbl.create (2 * n) in
    let out_mask = ref 0 and tr_mask = ref 0 and cond_mask = ref 0 in
    Array.iteri
      (fun l f ->
        let s, i = Fault.site f in
        let idx = (s * k) + i in
        site.(l) <- idx;
        (match Hashtbl.find_opt site_lanes idx with
        | Some m -> Hashtbl.replace site_lanes idx (m lor (1 lsl l))
        | None -> Hashtbl.add site_lanes idx (1 lsl l));
        match f with
        | Fault.Transfer { wrong_next; _ } ->
            wrong.(l) <- wrong_next;
            tr_mask := !tr_mask lor (1 lsl l)
        | Fault.Output { wrong_output; _ } ->
            wrong.(l) <- wrong_output;
            out_mask := !out_mask lor (1 lsl l)
        | Fault.Conditional_output { wrong_output; prev = ps, pi; _ } ->
            wrong.(l) <- wrong_output;
            cprev.(l) <- (ps * k) + pi;
            cond_mask := !cond_mask lor (1 lsl l))
      faults;
    {
      tab;
      site;
      wrong;
      cprev;
      site_lanes;
      out_mask = !out_mask;
      tr_mask = !tr_mask;
      cond_mask = !cond_mask;
      mstate = Array.make n 0;
      diverged = 0;
      sg = tab.Fsm.tab_reset;
      gprev = -1;
    }

  let step b ~active i =
    let k = b.tab.Fsm.tab_inputs in
    (* out-of-alphabet stimuli are invalid in every state, golden and
       mutant alike: halt with no verdicts, exactly like the scalar
       reference. Indexing the flat tables with such an [i] would
       alias into the next state's row instead. *)
    if i < 0 || i >= k then { Campaign.excited = 0; detected = 0; halt = true }
    else
    let gi = (b.sg * k) + i in
    let vg = b.tab.Fsm.tab_valid.(gi) in
    let detected = ref 0 in
    (* snapshot: lanes diverged at the START of this step — the redirect
       below must only apply to lanes whose mutant sits on the golden
       state, and re-convergence inside the loop must not re-qualify a
       lane for it *)
    let dv = b.diverged land active in
    if not vg then begin
      (* golden rejects the stimulus: diverged mutants that accept it
         are exposed by the validity mismatch; everyone else stops *)
      Campaign.iter_bits dv (fun l ->
          if b.tab.Fsm.tab_valid.((b.mstate.(l) * k) + i) then
            detected := !detected lor (1 lsl l));
      { Campaign.excited = 0; detected = !detected; halt = true }
    end
    else begin
      let sg' = b.tab.Fsm.tab_next.(gi) and og = b.tab.Fsm.tab_output.(gi) in
      (* lanes already diverged run their own scalar lockstep step *)
      Campaign.iter_bits dv (fun l ->
          let mi = (b.mstate.(l) * k) + i in
          if not b.tab.Fsm.tab_valid.(mi) then detected := !detected lor (1 lsl l)
          else if b.tab.Fsm.tab_output.(mi) <> og then
            detected := !detected lor (1 lsl l)
          else begin
            let ms' =
              if mi = b.site.(l) then b.wrong.(l) else b.tab.Fsm.tab_next.(mi)
            in
            if ms' = sg' then b.diverged <- b.diverged land lnot (1 lsl l);
            b.mstate.(l) <- ms'
          end);
      (* site events on the golden transition *)
      let excited =
        match Hashtbl.find_opt b.site_lanes gi with None -> 0 | Some m -> m
      in
      if excited <> 0 then begin
        (* effectiveness guarantees wrong_output <> og … *)
        detected := !detected lor (excited land b.out_mask);
        Campaign.iter_bits (excited land b.cond_mask) (fun l ->
            if b.cprev.(l) = b.gprev then detected := !detected lor (1 lsl l));
        (* … and wrong_next <> sg', so converged transfer lanes branch
           off the golden trajectory here *)
        Campaign.iter_bits
          (excited land b.tr_mask land lnot dv land active)
          (fun l ->
            b.mstate.(l) <- b.wrong.(l);
            if b.wrong.(l) <> sg' then begin
              b.diverged <- b.diverged lor (1 lsl l);
              Obs.incr c_lanes_diverged
            end);
      end;
      b.gprev <- gi;
      b.sg <- sg';
      { Campaign.excited; detected = !detected; halt = false }
    end
end

module Fsm_backend_w (L : Simcov_util.Lanes.S) = struct
  module L = L

  type ctx = Fsm_backend.ctx = { m : Fsm.t; tab : Fsm.tables }
  type fault = Fault.t
  type stim = int

  let name = backend_name
  let max_lanes = L.width
  let effective (ctx : ctx) f = Fault.is_effective ctx.m f

  type batch = {
    k : int;  (* tab_inputs *)
    tvalid : bool array;  (* the flat transition tables, hoisted *)
    tnext : int array;
    tout : int array;
    wrong : int array;
    cprev : int array;
    (* per-kind fault-site maps, flat (state * k + input) -> lane set:
       splitting by kind up front means an excited step handles each
       population directly instead of re-deriving it from a combined
       site set with one full-width mask intersection per kind *)
    site_out : L.t array;
    site_tr : L.t array;
    site_cond : L.t array;
    groups : L.t array;  (* mutant state -> diverged lanes sitting there *)
    stage : L.t array;  (* same-step landing sets, merged after the sweep *)
    occ : int array;  (* states with a nonempty group, unordered *)
    mutable occ_n : int;
    stg : int array;  (* states with a nonempty stage entry *)
    mutable stg_n : int;
    mutable diverged : L.t;
    mutable det : L.t;  (* per-step detected accumulator, reset each step *)
    mutable sg : int;
    mutable gprev : int;
  }

  let start (ctx : ctx) faults =
    let tab = ctx.tab in
    let k = tab.Fsm.tab_inputs in
    let n = Array.length faults in
    let wrong = Array.make n 0 in
    let cprev = Array.make n (-1) in
    let nsites = tab.Fsm.tab_states * k in
    let site_out = Array.make nsites L.zero in
    let site_tr = Array.make nsites L.zero in
    let site_cond = Array.make nsites L.zero in
    Array.iteri
      (fun l f ->
        let s, i = Fault.site f in
        let idx = (s * k) + i in
        match f with
        | Fault.Transfer { wrong_next; _ } ->
            wrong.(l) <- wrong_next;
            site_tr.(idx) <- L.add site_tr.(idx) l
        | Fault.Output { wrong_output; _ } ->
            wrong.(l) <- wrong_output;
            site_out.(idx) <- L.add site_out.(idx) l
        | Fault.Conditional_output { wrong_output; prev = ps, pi; _ } ->
            wrong.(l) <- wrong_output;
            cprev.(l) <- (ps * k) + pi;
            site_cond.(idx) <- L.add site_cond.(idx) l)
      faults;
    {
      k;
      tvalid = tab.Fsm.tab_valid;
      tnext = tab.Fsm.tab_next;
      tout = tab.Fsm.tab_output;
      wrong;
      cprev;
      site_out;
      site_tr;
      site_cond;
      groups = Array.make tab.Fsm.tab_states L.zero;
      stage = Array.make tab.Fsm.tab_states L.zero;
      occ = Array.make tab.Fsm.tab_states 0;
      occ_n = 0;
      stg = Array.make tab.Fsm.tab_states 0;
      stg_n = 0;
      diverged = L.zero;
      det = L.zero;
      sg = tab.Fsm.tab_reset;
      gprev = -1;
    }

  (* The one preallocated "nothing happened this step" event — the
     overwhelmingly common outcome, kept allocation-free. *)
  let quiet = { Campaign.excited = L.zero; detected = L.zero; halt = false }

  (* A diverged lane enters the group of its mutant state; the
     occupancy list makes the per-step sweep touch only states that
     actually hold lanes. *)
  let enter_group b s l =
    if b.groups.(s) == L.zero then begin
      b.occ.(b.occ_n) <- s;
      b.occ_n <- b.occ_n + 1
    end;
    b.groups.(s) <- L.add b.groups.(s) l

  let stage_lane b s l =
    if b.stage.(s) == L.zero then begin
      b.stg.(b.stg_n) <- s;
      b.stg_n <- b.stg_n + 1
    end;
    b.stage.(s) <- L.add b.stage.(s) l

  let stage_set b s lanes =
    if b.stage.(s) == L.zero then begin
      b.stg.(b.stg_n) <- s;
      b.stg_n <- b.stg_n + 1;
      b.stage.(s) <- lanes
    end
    else b.stage.(s) <- L.union b.stage.(s) lanes

  (* Prune a site's lanes against the driver's active set and store the
     pruned set back: a lane that retires never becomes active again
     within the batch, so the stored sets only ever tighten, and once a
     site's mutants are all retired every later golden visit reduces to
     one physical-equality test — without this, long batch tails
     re-scan full-width masks for lanes that were detected thousands of
     steps ago. The sweep's hitter lookup reads the same array, which
     stays correct: group members are undetected, hence never pruned. *)
  let[@inline] pruned arr gi active =
    let site = Array.unsafe_get arr gi in
    if site == L.zero then site
    else begin
      let p = L.inter site active in
      Array.unsafe_set arr gi p;
      p
    end

  let step b ~active i =
    let k = b.k in
    if i < 0 || i >= k then
      { Campaign.excited = L.zero; detected = L.zero; halt = true }
    else
      let gi = (b.sg * k) + i in
      let vg = Array.unsafe_get b.tvalid gi in
      if not vg then begin
        (* golden rejects the stimulus: diverged mutants that accept it
           are exposed by the validity mismatch; everyone else stops *)
        b.det <- L.zero;
        for j = 0 to b.occ_n - 1 do
          let s = Array.unsafe_get b.occ j in
          if b.groups.(s) != L.zero && b.tvalid.((s * k) + i) then
            b.det <- L.union b.det b.groups.(s)
        done;
        { Campaign.excited = L.zero; detected = b.det; halt = true }
      end
      else begin
        let sg' = Array.unsafe_get b.tnext gi
        and og = Array.unsafe_get b.tout gi in
        let s_out = pruned b.site_out gi active in
        let s_tr = pruned b.site_tr gi active in
        let s_cond = pruned b.site_cond gi active in
        b.det <- L.zero;
        (* [dv] snapshots the start-of-step diverged set, so lanes the
           sweep below re-converges this very step do not branch off
           again on the same stimulus. Lane sets are immutable — the
           sweep's removals rebind [b.diverged] to fresh sets — so the
           snapshot is one pointer copy, and because the site sets are
           pruned to active lanes the membership test below needs no
           [active] intersection. *)
        let dv = b.diverged in
        (* sweep the occupied mutant states: one table transition per
           state moves, detects, or re-converges its whole lane group —
           per-step divergence work is bounded by the number of FSM
           states the diverged mutants occupy, not by the number of
           diverged lanes. Mover sets land in [stage] so a group filled
           this step is not re-stepped by the same sweep; detected
           lanes leave [groups] / [diverged] at once (the driver
           intersects with its active set, so a detection reported for
           an already-retired lane is ignored anyway). *)
        if b.occ_n > 0 then begin
          let n0 = b.occ_n in
          b.occ_n <- 0;
          for j = 0 to n0 - 1 do
            let s = Array.unsafe_get b.occ j in
            let g = Array.unsafe_get b.groups s in
            if g != L.zero then begin
              let mi = (s * k) + i in
              Array.unsafe_set b.groups s L.zero;
              if (not (Array.unsafe_get b.tvalid mi))
                 || Array.unsafe_get b.tout mi <> og
              then begin
                b.det <- L.union b.det g;
                b.diverged <- L.diff b.diverged g
              end
              else begin
                let ns = Array.unsafe_get b.tnext mi in
                if L.disjoint g (Array.unsafe_get b.site_tr mi) then begin
                  (* no group member's own site is on this transition:
                     the whole group moves, and it is known nonempty *)
                  if ns = sg' then b.diverged <- L.diff b.diverged g
                  else stage_set b ns g
                end
                else begin
                  (* mutants whose own fault site is this transition
                     take their wrong next state individually *)
                  let hitters = L.inter g b.site_tr.(mi) in
                  L.iter hitters (fun l ->
                      let ms' = b.wrong.(l) in
                      if ms' = sg' then b.diverged <- L.remove b.diverged l
                      else stage_lane b ms' l);
                  let movers = L.diff g hitters in
                  if not (L.is_empty movers) then begin
                    if ns = sg' then b.diverged <- L.diff b.diverged movers
                    else stage_set b ns movers
                  end
                end
              end
            end
          done;
          (* merge: the sweep zeroed every group it visited, so each
             staged set moves in by pointer *)
          for j = 0 to b.stg_n - 1 do
            let s = Array.unsafe_get b.stg j in
            if b.groups.(s) == L.zero then begin
              b.occ.(b.occ_n) <- s;
              b.occ_n <- b.occ_n + 1;
              b.groups.(s) <- b.stage.(s)
            end
            else b.groups.(s) <- L.union b.groups.(s) b.stage.(s);
            b.stage.(s) <- L.zero
          done;
          b.stg_n <- 0
        end;
        (* an excited output-fault lane is detected on the spot; the
           per-kind site split makes this one pointer union *)
        if s_out != L.zero then b.det <- L.union b.det s_out;
        if s_cond != L.zero then
          L.iter s_cond (fun l ->
              if b.cprev.(l) = b.gprev then b.det <- L.add b.det l);
        if s_tr != L.zero then
          (* effectiveness guarantees wrong_next differs from the
             faulted transition's own golden successor, so a converged
             transfer lane excited here branches off unless its wrong
             state happens to coincide with [sg'] *)
          L.iter s_tr (fun l ->
              if (not (L.mem dv l)) && b.wrong.(l) <> sg' then begin
                b.diverged <- L.add b.diverged l;
                enter_group b b.wrong.(l) l;
                Obs.incr c_lanes_diverged
              end);
        b.gprev <- gi;
        b.sg <- sg';
        if s_out == L.zero && s_tr == L.zero && s_cond == L.zero then begin
          if L.is_empty b.det then quiet
          else { Campaign.excited = L.zero; detected = b.det; halt = false }
        end
        else
          { Campaign.excited = L.union s_out (L.union s_tr s_cond);
            detected = b.det;
            halt = false }
      end
end

module Driver = Campaign.Make (Fsm_backend)

let campaign_outcome ?budget ?lanes ?jobs ?max_workers ?on_batch ?resume
    ?checkpoint ?should_stop ?shard_retries ?retry_backoff_s golden faults word =
  let ctx = { Fsm_backend.m = golden; tab = Fsm.tables golden } in
  match lanes with
  | Some w when w > Sys.int_size ->
      let module L = (val Simcov_util.Lanes.make w) in
      let module D = Campaign.Make_wide (Fsm_backend_w (L)) in
      D.run ?budget ?jobs ?max_workers ?on_batch ?resume ?checkpoint
        ?should_stop ?shard_retries ?retry_backoff_s ctx faults word
  | _ ->
      Driver.run ?budget ?jobs ?max_workers ?on_batch ?resume ?checkpoint
        ?should_stop ?shard_retries ?retry_backoff_s ctx faults word

let campaign ?budget ?lanes ?jobs ?on_batch golden faults word =
  (campaign_outcome ?budget ?lanes ?jobs ?on_batch golden faults word)
    .Campaign.report

(* the retained scalar reference: one full mutant rerun per fault,
   through [run_verdict]; the QCheck suite pins the batched driver
   against it, and the bench quantifies the speedup *)
let campaign_scalar golden faults word =
  let total = List.length faults in
  let effective = ref 0 and excited = ref 0 and detected = ref 0 in
  let missed = ref [] and verdicts = ref [] in
  List.iter
    (fun f ->
      if Fault.is_effective golden f then begin
        incr effective;
        let v = run_verdict golden f word in
        if v.excited then incr excited;
        if v.detected then incr detected
        else if v.excited then missed := f :: !missed;
        verdicts := (f, v) :: !verdicts
      end)
    faults;
  {
    Campaign.report =
      {
        backend = backend_name;
        total;
        effective = !effective;
        excited = !excited;
        detected = !detected;
        missed = List.rev !missed;
        skipped = 0;
        truncated = None;
        shard_failures = [];
      };
    verdicts = List.rev !verdicts;
  }

let coverage_pct = Campaign.coverage_pct
let pp_report = Campaign.pp_report
let to_json ?extra r = Campaign.to_json ~fault:Fault.to_json ?extra r

(* Definition 4, operationally: windows where the two state
   trajectories diverge and silently re-converge. *)
let masked_windows (golden : Fsm.t) (mutant : Fsm.t) word =
  let rec go step sg sm window acc word =
    match word with
    | [] -> List.rev acc (* open window never closed: not masked *)
    | i :: rest -> (
        let vg = golden.Fsm.valid sg i and vm = mutant.Fsm.valid sm i in
        if vg <> vm then List.rev acc (* exposed; stop *)
        else if not vg then List.rev acc
        else
          let og = golden.Fsm.output sg i and om = mutant.Fsm.output sm i in
          if og <> om then List.rev acc (* exposed inside the window *)
          else
            let sg' = golden.Fsm.next sg i and sm' = mutant.Fsm.next sm i in
            match window with
            | None ->
                let window = if sg' <> sm' then Some step else None in
                go (step + 1) sg' sm' window acc rest
            | Some j ->
                if sg' = sm' then go (step + 1) sg' sm' None ((j, step) :: acc) rest
                else go (step + 1) sg' sm' window acc rest)
  in
  go 0 golden.Fsm.reset mutant.Fsm.reset None [] word

let has_masked_transfer golden faults word =
  let mutant = Fault.apply_all golden faults in
  masked_windows golden mutant word <> []

let transitions_covered (m : Fsm.t) word =
  let seen = Hashtbl.create 256 in
  let rec go s = function
    | [] -> ()
    | i :: rest ->
        if m.Fsm.valid s i then begin
          Hashtbl.replace seen (s, i) ();
          go (m.Fsm.next s i) rest
        end
  in
  go m.Fsm.reset word;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let is_transition_tour m word =
  List.length (transitions_covered m word) = Fsm.n_transitions m

let state_coverage (m : Fsm.t) word =
  let seen = Hashtbl.create 64 in
  let rec go s = function
    | [] -> ()
    | i :: rest ->
        if m.Fsm.valid s i then begin
          let s' = m.Fsm.next s i in
          Hashtbl.replace seen s' ();
          go s' rest
        end
  in
  Hashtbl.replace seen m.Fsm.reset ();
  go m.Fsm.reset word;
  Hashtbl.length seen

let transition_coverage m word = List.length (transitions_covered m word)
