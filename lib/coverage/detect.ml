open Simcov_fsm
module Campaign = Simcov_campaign.Campaign
module Obs = Simcov_obs.Obs

let c_lanes_diverged = Obs.counter "campaign.lanes_diverged"

type verdict = Campaign.verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;
  excite_step : int option;
}

let run_verdict (golden : Fsm.t) fault word =
  let mutant = Fault.apply golden fault in
  let fsite = Fault.site fault in
  let rec go step sg sm excite detect word =
    match word with
    | [] -> (excite, detect)
    | i :: rest -> (
        let vg = golden.Fsm.valid sg i and vm = mutant.Fsm.valid sm i in
        (* excitation is a property of the golden path alone, so it must
           be recorded even when this very step is the detecting
           validity mismatch *)
        let excite =
          if vg && (sg, i) = fsite && excite = None then Some step else excite
        in
        if vg <> vm then (excite, Some (Option.value detect ~default:step))
        else if not vg then (excite, detect) (* word invalid from here; stop *)
        else
          let og = golden.Fsm.output sg i and om = mutant.Fsm.output sm i in
          if og <> om then (excite, Some step)
          else
            match detect with
            | Some _ -> (excite, detect)
            | None ->
                go (step + 1) (golden.Fsm.next sg i) (mutant.Fsm.next sm i) excite detect
                  rest)
  in
  let excite_step, detect_step =
    go 0 golden.Fsm.reset mutant.Fsm.reset None None word
  in
  {
    detected = detect_step <> None;
    excited = excite_step <> None;
    detect_step;
    excite_step;
  }

let detects golden fault word = (run_verdict golden fault word).detected

type 'f campaign_report = 'f Campaign.report = {
  backend : string;
  total : int;
  effective : int;
  excited : int;
  detected : int;
  missed : 'f list;
  skipped : int;
  truncated : Simcov_util.Budget.resource option;
}

type report = Fault.t campaign_report

let backend_name = "fsm-fault"

(* The bit-parallel FSM-fault backend. One golden pass per stimulus
   word evaluates up to [Sys.int_size] mutants at once, one per int bit
   lane. Mutant trajectories are tracked by difference from the golden
   trajectory:

   - output and conditional-output lanes never leave the golden
     trajectory, so they need no per-lane state at all — they detect
     the moment the golden run traverses their site (with the required
     history, for conditional lanes);
   - a transfer lane is "diverged" once its mutant's state differs from
     the golden state; only diverged lanes pay for a per-lane scalar
     step, and they rejoin the cheap converged set on silent
     re-convergence (Definition 4's masking window closing). *)
module Fsm_backend = struct
  type ctx = { m : Fsm.t; tab : Fsm.tables }
  type fault = Fault.t
  type stim = int

  let name = backend_name
  let max_lanes = Sys.int_size
  let effective ctx f = Fault.is_effective ctx.m f

  type batch = {
    tab : Fsm.tables;
    site : int array;  (* lane -> faulted (state * k + input) *)
    wrong : int array;  (* lane -> wrong next state / wrong output *)
    cprev : int array;  (* conditional lanes: required previous transition *)
    site_lanes : (int, int) Hashtbl.t;  (* transition -> lane set faulted there *)
    out_mask : int;
    tr_mask : int;
    cond_mask : int;
    mstate : int array;  (* per-lane mutant state, meaningful when diverged *)
    mutable diverged : int;
    mutable sg : int;  (* golden state *)
    mutable gprev : int;  (* previous golden transition, -1 at reset *)
  }

  let start (ctx : ctx) faults =
    let tab = ctx.tab in
    let k = tab.Fsm.tab_inputs in
    let n = Array.length faults in
    let site = Array.make n 0 and wrong = Array.make n 0 in
    let cprev = Array.make n (-1) in
    let site_lanes = Hashtbl.create (2 * n) in
    let out_mask = ref 0 and tr_mask = ref 0 and cond_mask = ref 0 in
    Array.iteri
      (fun l f ->
        let s, i = Fault.site f in
        let idx = (s * k) + i in
        site.(l) <- idx;
        (match Hashtbl.find_opt site_lanes idx with
        | Some m -> Hashtbl.replace site_lanes idx (m lor (1 lsl l))
        | None -> Hashtbl.add site_lanes idx (1 lsl l));
        match f with
        | Fault.Transfer { wrong_next; _ } ->
            wrong.(l) <- wrong_next;
            tr_mask := !tr_mask lor (1 lsl l)
        | Fault.Output { wrong_output; _ } ->
            wrong.(l) <- wrong_output;
            out_mask := !out_mask lor (1 lsl l)
        | Fault.Conditional_output { wrong_output; prev = ps, pi; _ } ->
            wrong.(l) <- wrong_output;
            cprev.(l) <- (ps * k) + pi;
            cond_mask := !cond_mask lor (1 lsl l))
      faults;
    {
      tab;
      site;
      wrong;
      cprev;
      site_lanes;
      out_mask = !out_mask;
      tr_mask = !tr_mask;
      cond_mask = !cond_mask;
      mstate = Array.make n 0;
      diverged = 0;
      sg = tab.Fsm.tab_reset;
      gprev = -1;
    }

  let step b ~active i =
    let k = b.tab.Fsm.tab_inputs in
    (* out-of-alphabet stimuli are invalid in every state, golden and
       mutant alike: halt with no verdicts, exactly like the scalar
       reference. Indexing the flat tables with such an [i] would
       alias into the next state's row instead. *)
    if i < 0 || i >= k then { Campaign.excited = 0; detected = 0; halt = true }
    else
    let gi = (b.sg * k) + i in
    let vg = b.tab.Fsm.tab_valid.(gi) in
    let detected = ref 0 in
    (* snapshot: lanes diverged at the START of this step — the redirect
       below must only apply to lanes whose mutant sits on the golden
       state, and re-convergence inside the loop must not re-qualify a
       lane for it *)
    let dv = b.diverged land active in
    if not vg then begin
      (* golden rejects the stimulus: diverged mutants that accept it
         are exposed by the validity mismatch; everyone else stops *)
      Campaign.iter_bits dv (fun l ->
          if b.tab.Fsm.tab_valid.((b.mstate.(l) * k) + i) then
            detected := !detected lor (1 lsl l));
      { Campaign.excited = 0; detected = !detected; halt = true }
    end
    else begin
      let sg' = b.tab.Fsm.tab_next.(gi) and og = b.tab.Fsm.tab_output.(gi) in
      (* lanes already diverged run their own scalar lockstep step *)
      Campaign.iter_bits dv (fun l ->
          let mi = (b.mstate.(l) * k) + i in
          if not b.tab.Fsm.tab_valid.(mi) then detected := !detected lor (1 lsl l)
          else if b.tab.Fsm.tab_output.(mi) <> og then
            detected := !detected lor (1 lsl l)
          else begin
            let ms' =
              if mi = b.site.(l) then b.wrong.(l) else b.tab.Fsm.tab_next.(mi)
            in
            if ms' = sg' then b.diverged <- b.diverged land lnot (1 lsl l);
            b.mstate.(l) <- ms'
          end);
      (* site events on the golden transition *)
      let excited =
        match Hashtbl.find_opt b.site_lanes gi with None -> 0 | Some m -> m
      in
      if excited <> 0 then begin
        (* effectiveness guarantees wrong_output <> og … *)
        detected := !detected lor (excited land b.out_mask);
        Campaign.iter_bits (excited land b.cond_mask) (fun l ->
            if b.cprev.(l) = b.gprev then detected := !detected lor (1 lsl l));
        (* … and wrong_next <> sg', so converged transfer lanes branch
           off the golden trajectory here *)
        Campaign.iter_bits
          (excited land b.tr_mask land lnot dv land active)
          (fun l ->
            b.mstate.(l) <- b.wrong.(l);
            if b.wrong.(l) <> sg' then begin
              b.diverged <- b.diverged lor (1 lsl l);
              Obs.incr c_lanes_diverged
            end);
      end;
      b.gprev <- gi;
      b.sg <- sg';
      { Campaign.excited; detected = !detected; halt = false }
    end
end

module Driver = Campaign.Make (Fsm_backend)

let campaign_outcome ?budget ?on_batch golden faults word =
  Driver.run ?budget ?on_batch
    { Fsm_backend.m = golden; tab = Fsm.tables golden }
    faults word

let campaign ?budget ?on_batch golden faults word =
  (campaign_outcome ?budget ?on_batch golden faults word).Campaign.report

(* the retained scalar reference: one full mutant rerun per fault,
   through [run_verdict]; the QCheck suite pins the batched driver
   against it, and the bench quantifies the speedup *)
let campaign_scalar golden faults word =
  let total = List.length faults in
  let effective = ref 0 and excited = ref 0 and detected = ref 0 in
  let missed = ref [] and verdicts = ref [] in
  List.iter
    (fun f ->
      if Fault.is_effective golden f then begin
        incr effective;
        let v = run_verdict golden f word in
        if v.excited then incr excited;
        if v.detected then incr detected
        else if v.excited then missed := f :: !missed;
        verdicts := (f, v) :: !verdicts
      end)
    faults;
  {
    Campaign.report =
      {
        backend = backend_name;
        total;
        effective = !effective;
        excited = !excited;
        detected = !detected;
        missed = List.rev !missed;
        skipped = 0;
        truncated = None;
      };
    verdicts = List.rev !verdicts;
  }

let coverage_pct = Campaign.coverage_pct
let pp_report = Campaign.pp_report
let to_json ?extra r = Campaign.to_json ~fault:Fault.to_json ?extra r

(* Definition 4, operationally: windows where the two state
   trajectories diverge and silently re-converge. *)
let masked_windows (golden : Fsm.t) (mutant : Fsm.t) word =
  let rec go step sg sm window acc word =
    match word with
    | [] -> List.rev acc (* open window never closed: not masked *)
    | i :: rest -> (
        let vg = golden.Fsm.valid sg i and vm = mutant.Fsm.valid sm i in
        if vg <> vm then List.rev acc (* exposed; stop *)
        else if not vg then List.rev acc
        else
          let og = golden.Fsm.output sg i and om = mutant.Fsm.output sm i in
          if og <> om then List.rev acc (* exposed inside the window *)
          else
            let sg' = golden.Fsm.next sg i and sm' = mutant.Fsm.next sm i in
            match window with
            | None ->
                let window = if sg' <> sm' then Some step else None in
                go (step + 1) sg' sm' window acc rest
            | Some j ->
                if sg' = sm' then go (step + 1) sg' sm' None ((j, step) :: acc) rest
                else go (step + 1) sg' sm' window acc rest)
  in
  go 0 golden.Fsm.reset mutant.Fsm.reset None [] word

let has_masked_transfer golden faults word =
  let mutant = Fault.apply_all golden faults in
  masked_windows golden mutant word <> []

let transitions_covered (m : Fsm.t) word =
  let seen = Hashtbl.create 256 in
  let rec go s = function
    | [] -> ()
    | i :: rest ->
        if m.Fsm.valid s i then begin
          Hashtbl.replace seen (s, i) ();
          go (m.Fsm.next s i) rest
        end
  in
  go m.Fsm.reset word;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let is_transition_tour m word =
  List.length (transitions_covered m word) = Fsm.n_transitions m

let state_coverage (m : Fsm.t) word =
  let seen = Hashtbl.create 64 in
  let rec go s = function
    | [] -> ()
    | i :: rest ->
        if m.Fsm.valid s i then begin
          let s' = m.Fsm.next s i in
          Hashtbl.replace seen s' ();
          go s' rest
        end
  in
  Hashtbl.replace seen m.Fsm.reset ();
  go m.Fsm.reset word;
  Hashtbl.length seen

let transition_coverage m word = List.length (transitions_covered m word)
