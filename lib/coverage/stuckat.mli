(** Stuck-at fault simulation on netlists.

    The classical gate-level test-quality metric, provided as a third
    reference point next to design-error (FSM fault) coverage and the
    observability metric: a {e stuck-at} fault pins a register output
    or a primary input to a constant. A test word detects the fault
    when the faulty circuit's outputs diverge from the good circuit's
    at some step, and {e excites} it when the faulted net carries the
    opposite of its pinned value in the golden circuit — so stuck-at
    campaigns report the same four-column verdict (effective / excited
    / detected / missed) as FSM-fault campaigns.

    The paper's methodology targets {e design} errors, not fabrication
    faults; running both metrics on the same stimuli shows how
    different the populations are (a tour tuned for transition
    coverage is decent but not complete for stuck-ats, and vice
    versa).

    Campaigns route through the shared {!Simcov_campaign.Campaign}
    driver with true bit-parallel lanes: bit [l] of every packed int is
    a net value in faulty circuit [l], and one {!Expr.eval_lanes} pass
    evaluates all lanes at once. *)

open Simcov_netlist
module Campaign = Simcov_campaign.Campaign

type site = Reg_output of int | Primary_input of int

type fault = { site : site; stuck : bool }

val all_faults : Circuit.t -> fault list
(** Both polarities at every register output and primary input. *)

val run_verdict : Circuit.t -> fault -> bool array list -> Campaign.verdict
(** Scalar lockstep reference of good vs faulty circuit on the word;
    the faulty circuit sees the pinned value everywhere the signal is
    read, including in the input-constraint check (a combination
    turning invalid only when faulty counts as detection, mirroring
    {!Detect}; one invalid only for the {e golden} circuit is likewise
    a detection, and invalid for both ends the word). *)

val detects : Circuit.t -> fault -> bool array list -> bool

val site_differs : fault -> Circuit.state -> bool array -> bool
(** The excitation predicate: does the faulted net carry the opposite
    of its pinned value in the golden circuit under this state and
    input vector? *)

(** {1 Campaigns} *)

type 'f campaign_report = 'f Campaign.report = {
  backend : string;
  total : int;
  effective : int;  (** every stuck-at fault is effective *)
  excited : int;
  detected : int;
  missed : 'f list;
  skipped : int;
  truncated : Simcov_util.Budget.resource option;
  shard_failures : Campaign.shard_failure list;
      (** shards lost to worker faults under [~jobs]; empty on healthy
          runs *)
}

type report = fault campaign_report

val campaign :
  ?budget:Simcov_util.Budget.t ->
  ?lanes:int ->
  ?jobs:int ->
  ?on_batch:(Campaign.progress -> unit) ->
  Circuit.t ->
  fault list ->
  bool array list ->
  report
(** Bit-parallel batched campaign via the shared driver; budget
    exhaustion yields a [truncated] partial report. [lanes] beyond
    [Sys.int_size] selects the bit-sliced wide backend; [jobs > 1]
    shards faults across domains (see {!Simcov_campaign.Campaign}). *)

val campaign_outcome :
  ?budget:Simcov_util.Budget.t ->
  ?lanes:int ->
  ?jobs:int ->
  ?max_workers:int ->
  ?on_batch:(Campaign.progress -> unit) ->
  ?resume:(fault -> Campaign.verdict option) ->
  ?checkpoint:fault Campaign.checkpoint ->
  ?should_stop:(unit -> bool) ->
  ?shard_retries:int ->
  ?retry_backoff_s:float ->
  Circuit.t ->
  fault list ->
  bool array list ->
  fault Campaign.outcome
(** As {!campaign}, additionally returning per-fault verdicts and the
    driver's crash-safety hooks (resume / checkpoint / clean stop /
    shard fault isolation — see {!Simcov_campaign.Campaign}). *)

val coverage_pct : report -> float
val pp_report : Format.formatter -> report -> unit
val fault_to_json : fault -> Simcov_util.Json.t

val fault_key : fault -> string
(** A stable, injective textual key (["r:N:b"] / ["i:N:b"]) — the
    coverage-database record key: equal faults have equal keys across
    runs and processes. *)

val to_json :
  ?extra:(string * Simcov_util.Json.t) list -> report -> Simcov_util.Json.t
(** [simcov-campaign/1] rendering with structured missed faults. *)

val pp_fault : Format.formatter -> fault -> unit
