(** Error detection by simulation, masking, and coverage campaigns.

    A fault is {e excited} when the faulted transition is traversed and
    {e exposed} (detected) when the observed outputs of the mutant
    differ from the golden machine's — possibly several steps later,
    which is exactly the gap between excitation and exposure that
    Section 4.2 illustrates with Figure 2.

    Campaigns route through the shared {!Simcov_campaign.Campaign}
    driver: mutants are packed into int bit lanes and evaluated with
    one golden pass per word instead of one full rerun per fault. The
    scalar path ({!run_verdict}, {!campaign_scalar}) is retained as the
    executable reference the batched engine is tested against. *)

open Simcov_fsm
module Campaign = Simcov_campaign.Campaign

type verdict = Campaign.verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;  (** first step (0-based) with an observable difference *)
  excite_step : int option;  (** first traversal of the faulted transition (golden path) *)
}

val run_verdict : Fsm.t -> Fault.t -> int list -> verdict
(** Simulate golden and mutant in lockstep on the input word. An
    observable difference is a differing output or an input that is
    valid in one machine's current state and not the other's. The word
    is truncated at the first input invalid in {e both} runs.
    Excitation is recorded whenever the golden run traverses the fault
    site — including on the step whose validity mismatch detects the
    fault. *)

val detects : Fsm.t -> Fault.t -> int list -> bool

(** {1 Campaigns} *)

type 'f campaign_report = 'f Campaign.report = {
  backend : string;
  total : int;
  effective : int;  (** faults that actually change behavior locally *)
  excited : int;
  detected : int;
  missed : 'f list;  (** effective, excited, yet undetected *)
  skipped : int;  (** effective faults left unevaluated by truncation *)
  truncated : Simcov_util.Budget.resource option;
  shard_failures : Campaign.shard_failure list;
      (** shards lost to worker faults under [~jobs]; empty on healthy
          runs *)
}
(** The shared campaign report, re-exported so existing field accesses
    ([r.Detect.total], …) keep working. *)

type report = Fault.t campaign_report

val campaign :
  ?budget:Simcov_util.Budget.t ->
  ?lanes:int ->
  ?jobs:int ->
  ?on_batch:(Campaign.progress -> unit) ->
  Fsm.t ->
  Fault.t list ->
  int list ->
  report
(** Bit-parallel batched campaign via the shared driver. Budget
    exhaustion yields a [truncated] partial report, never an
    exception.

    [lanes] selects the lane representation: up to [Sys.int_size]
    (the default) runs the native-int backend; wider values run the
    bit-sliced backend with that many mutants per golden pass.
    [jobs > 1] shards the effective faults across that many domains
    (see {!Simcov_campaign.Campaign}'s determinism contract). *)

val campaign_outcome :
  ?budget:Simcov_util.Budget.t ->
  ?lanes:int ->
  ?jobs:int ->
  ?max_workers:int ->
  ?on_batch:(Campaign.progress -> unit) ->
  ?resume:(Fault.t -> Campaign.verdict option) ->
  ?checkpoint:Fault.t Campaign.checkpoint ->
  ?should_stop:(unit -> bool) ->
  ?shard_retries:int ->
  ?retry_backoff_s:float ->
  Fsm.t ->
  Fault.t list ->
  int list ->
  Fault.t Campaign.outcome
(** As {!campaign}, additionally returning per-fault verdicts, and
    exposing the driver's crash-safety hooks: [resume] retires
    already-decided faults, [checkpoint] flushes cumulative verdicts
    periodically, [should_stop] requests a clean early stop, and a
    worker exception costs at most one shard (reported in
    [shard_failures] after [shard_retries] fresh-domain retries). *)

val campaign_scalar : Fsm.t -> Fault.t list -> int list -> Fault.t Campaign.outcome
(** The scalar reference: one {!run_verdict} rerun per effective fault.
    Same verdicts and report as {!campaign} under an unlimited budget. *)

val coverage_pct : report -> float
(** [100 * detected / effective] (100.0 when there are no effective
    faults). *)

val pp_report : Format.formatter -> report -> unit

val to_json :
  ?extra:(string * Simcov_util.Json.t) list -> report -> Simcov_util.Json.t
(** [simcov-campaign/1] rendering with structured missed faults. *)

(** {1 Masking (Definition 4)} *)

val masked_windows : Fsm.t -> Fsm.t -> int list -> (int * int) list
(** Run golden and mutant on the word; return the maximal index windows
    [(j, l)] in which the state trajectories diverge at [j] and
    re-converge at [l] with no observable output difference inside —
    the operational form of a masked transfer error. An empty list
    means the trajectories never diverged or every divergence was
    exposed or never closed. *)

val has_masked_transfer : Fsm.t -> Fault.t list -> int list -> bool
(** Whether applying the faults produces at least one masked window on
    the word — used to check Requirement 4 experimentally. *)

(** {1 Transition coverage of a word} *)

val transitions_covered : Fsm.t -> int list -> (int * int) list
(** Distinct (state, input) pairs traversed by the word from reset. *)

val is_transition_tour : Fsm.t -> int list -> bool
(** Does the word traverse every reachable valid transition? *)

val state_coverage : Fsm.t -> int list -> int
val transition_coverage : Fsm.t -> int list -> int
