open Simcov_netlist
module Campaign = Simcov_campaign.Campaign

type site = Reg_output of int | Primary_input of int
type fault = { site : site; stuck : bool }

let all_faults (c : Circuit.t) =
  let regs =
    List.init (Circuit.n_regs c) (fun r ->
        [ { site = Reg_output r; stuck = false }; { site = Reg_output r; stuck = true } ])
  in
  let inputs =
    List.init (Circuit.n_inputs c) (fun i ->
        [
          { site = Primary_input i; stuck = false };
          { site = Primary_input i; stuck = true };
        ])
  in
  List.concat (regs @ inputs)

(* evaluate the faulty circuit one step: reads of the faulted signal
   see the pinned value; the register itself still updates (a stuck
   OUTPUT, not a stuck latch) which is the standard single-stuck-at
   model on the net *)
let faulty_step (c : Circuit.t) fault state inputs =
  let read_input i =
    match fault.site with Primary_input j when j = i -> fault.stuck | _ -> inputs.(i)
  in
  let read_reg r =
    match fault.site with Reg_output j when j = r -> fault.stuck | _ -> state.(r)
  in
  if not (Expr.eval ~inputs:read_input ~regs:read_reg c.Circuit.input_constraint) then None
  else begin
    let next =
      Array.map (fun (r : Circuit.reg) -> Expr.eval ~inputs:read_input ~regs:read_reg r.Circuit.next) c.Circuit.regs
    in
    let outs =
      Array.map
        (fun (o : Circuit.port) -> Expr.eval ~inputs:read_input ~regs:read_reg o.Circuit.expr)
        c.Circuit.outputs
    in
    Some (next, outs)
  end

(* the fault is excited when the faulted net carries the opposite of
   its pinned value in the GOLDEN circuit this step *)
let site_differs fault (state : Circuit.state) (inputs : bool array) =
  match fault.site with
  | Reg_output r -> state.(r) <> fault.stuck
  | Primary_input i -> inputs.(i) <> fault.stuck

let run_verdict (c : Circuit.t) fault word =
  let rec go step good bad excite detect word =
    match word with
    | [] -> (excite, detect)
    | iv :: rest -> (
        if Circuit.input_valid c good iv then begin
          let excite =
            if excite = None && site_differs fault good iv then Some step
            else excite
          in
          match faulty_step c fault bad iv with
          | None -> (excite, Some step) (* constraint violated only when faulty *)
          | Some (bad', bout) ->
              let good', gout = Circuit.step c good iv in
              if gout <> bout then (excite, Some step)
              else go (step + 1) good' bad' excite detect rest
        end
        else
          (* the golden circuit rejects the vector: a faulty circuit
             that accepts it is exposed; otherwise the word ends here *)
          match faulty_step c fault bad iv with
          | Some _ -> (excite, Some step)
          | None -> (excite, detect))
  in
  let excite_step, detect_step =
    go 0 (Circuit.initial_state c) (Circuit.initial_state c) None None word
  in
  {
    Campaign.detected = detect_step <> None;
    excited = excite_step <> None;
    detect_step;
    excite_step;
  }

let detects c fault word = (run_verdict c fault word).Campaign.detected

(* The bit-parallel stuck-at backend: bit l of every packed int is the
   value of a net in faulty circuit l. One {!Expr.eval_lanes} pass per
   expression evaluates all lanes at once; a lane's reads of its
   faulted signal are pinned through per-signal (mask, ones) pairs. *)
module Net_backend = struct
  type ctx = Circuit.t
  type nonrec fault = fault
  type stim = bool array

  let name = "stuck-at"
  let max_lanes = Sys.int_size
  let effective _ _ = true

  type batch = {
    c : Circuit.t;
    full : int;  (* lane population mask *)
    lanes : int array;  (* per-register packed lane values *)
    mutable good : Circuit.state;
    pmr : int array;  (* per-register: lanes pinned on that register *)
    p1r : int array;  (* … of those, lanes pinned to 1 *)
    pmi : int array;  (* per-input: lanes pinned on that input *)
    p1i : int array;
  }

  let start (c : Circuit.t) (faults : fault array) =
    let nr = Circuit.n_regs c and ni = Circuit.n_inputs c in
    let full = Campaign.ones (Array.length faults) in
    let pmr = Array.make nr 0 and p1r = Array.make nr 0 in
    let pmi = Array.make ni 0 and p1i = Array.make ni 0 in
    Array.iteri
      (fun l f ->
        let bit = 1 lsl l in
        match f.site with
        | Reg_output r ->
            pmr.(r) <- pmr.(r) lor bit;
            if f.stuck then p1r.(r) <- p1r.(r) lor bit
        | Primary_input i ->
            pmi.(i) <- pmi.(i) lor bit;
            if f.stuck then p1i.(i) <- p1i.(i) lor bit)
      faults;
    let good = Circuit.initial_state c in
    let lanes = Array.map (fun b -> if b then full else 0) good in
    { c; full; lanes; good; pmr; p1r; pmi; p1i }

  let step b ~active:_ iv =
    let c = b.c in
    let read_in i =
      ((if iv.(i) then b.full else 0) land lnot b.pmi.(i)) lor b.p1i.(i)
    in
    let read_reg r = (b.lanes.(r) land lnot b.pmr.(r)) lor b.p1r.(r) in
    let cm =
      Expr.eval_lanes ~inputs:read_in ~regs:read_reg c.Circuit.input_constraint
      land b.full
    in
    if Circuit.input_valid c b.good iv then begin
      (* excitation: the golden value of the faulted net differs from
         the pinned value *)
      let excited = ref 0 in
      Array.iteri
        (fun r gb ->
          excited :=
            !excited lor (if gb then b.pmr.(r) land lnot b.p1r.(r) else b.p1r.(r)))
        b.good;
      Array.iteri
        (fun i bit ->
          excited :=
            !excited lor (if bit then b.pmi.(i) land lnot b.p1i.(i) else b.p1i.(i)))
        iv;
      (* lanes whose pinned constraint fails are detected outright … *)
      let detected = ref (b.full land lnot cm) in
      let good', gout = Circuit.step c b.good iv in
      (* … the rest by comparing observable outputs per lane *)
      Array.iteri
        (fun oi (o : Circuit.port) ->
          let ow = Expr.eval_lanes ~inputs:read_in ~regs:read_reg o.Circuit.expr in
          let g = if gout.(oi) then b.full else 0 in
          detected := !detected lor (ow lxor g land cm))
        c.Circuit.outputs;
      let n = Array.length c.Circuit.regs in
      let next =
        Array.map
          (fun (r : Circuit.reg) ->
            Expr.eval_lanes ~inputs:read_in ~regs:read_reg r.Circuit.next land b.full)
          c.Circuit.regs
      in
      Array.blit next 0 b.lanes 0 n;
      b.good <- good';
      { Campaign.excited = !excited; detected = !detected; halt = false }
    end
    else
      (* golden rejects the vector: lanes whose faulty circuit still
         accepts it are exposed; the word ends for everyone else *)
      { Campaign.excited = 0; detected = cm; halt = true }
end

(* The same backend over an arbitrary lane representation: lane values
   are [L.t] bit-slices and expressions are evaluated through the
   functorized {!Expr.Wide_eval}. [Net_backend] stays verbatim as the
   direct-int default and oracle. Unlike the FSM backend, per-step work
   here is dominated by per-lane expression evaluation (every lane's
   nets are recomputed every step), so widening mainly buys fewer
   batch setups, not an order of magnitude — the wide stuck-at path
   exists for uniformity and for sharding, and the bench reports it
   honestly. *)
module Net_backend_w (L : Simcov_util.Lanes.S) = struct
  module L = L
  module E = Expr.Wide_eval (L)

  type ctx = Circuit.t
  type nonrec fault = fault
  type stim = bool array

  let name = "stuck-at"
  let max_lanes = L.width
  let effective _ _ = true

  type batch = {
    c : Circuit.t;
    full : L.t;
    lanes : L.t array;
    mutable good : Circuit.state;
    pmr : L.t array;
    p1r : L.t array;
    pmi : L.t array;
    p1i : L.t array;
  }

  let start (c : Circuit.t) (faults : fault array) =
    let nr = Circuit.n_regs c and ni = Circuit.n_inputs c in
    let full = L.ones (Array.length faults) in
    let pmr = Array.make nr L.zero and p1r = Array.make nr L.zero in
    let pmi = Array.make ni L.zero and p1i = Array.make ni L.zero in
    Array.iteri
      (fun l f ->
        match f.site with
        | Reg_output r ->
            pmr.(r) <- L.add pmr.(r) l;
            if f.stuck then p1r.(r) <- L.add p1r.(r) l
        | Primary_input i ->
            pmi.(i) <- L.add pmi.(i) l;
            if f.stuck then p1i.(i) <- L.add p1i.(i) l)
      faults;
    let good = Circuit.initial_state c in
    let lanes = Array.map (fun b -> if b then full else L.zero) good in
    { c; full; lanes; good; pmr; p1r; pmi; p1i }

  let step b ~active:_ iv =
    let c = b.c in
    let read_in i =
      L.union (L.diff (if iv.(i) then b.full else L.zero) b.pmi.(i)) b.p1i.(i)
    in
    let read_reg r = L.union (L.diff b.lanes.(r) b.pmr.(r)) b.p1r.(r) in
    let cm =
      L.inter
        (E.eval ~inputs:read_in ~regs:read_reg c.Circuit.input_constraint)
        b.full
    in
    if Circuit.input_valid c b.good iv then begin
      let excited = ref L.zero in
      Array.iteri
        (fun r gb ->
          excited :=
            L.union !excited
              (if gb then L.diff b.pmr.(r) b.p1r.(r) else b.p1r.(r)))
        b.good;
      Array.iteri
        (fun i bit ->
          excited :=
            L.union !excited
              (if bit then L.diff b.pmi.(i) b.p1i.(i) else b.p1i.(i)))
        iv;
      let detected = ref (L.diff b.full cm) in
      let good', gout = Circuit.step c b.good iv in
      Array.iteri
        (fun oi (o : Circuit.port) ->
          let ow = E.eval ~inputs:read_in ~regs:read_reg o.Circuit.expr in
          let g = if gout.(oi) then b.full else L.zero in
          detected := L.union !detected (L.inter (L.xor ow g) cm))
        c.Circuit.outputs;
      let n = Array.length c.Circuit.regs in
      let next =
        Array.map
          (fun (r : Circuit.reg) ->
            L.inter (E.eval ~inputs:read_in ~regs:read_reg r.Circuit.next) b.full)
          c.Circuit.regs
      in
      Array.blit next 0 b.lanes 0 n;
      b.good <- good';
      { Campaign.excited = !excited; detected = !detected; halt = false }
    end
    else { Campaign.excited = L.zero; detected = cm; halt = true }
end

module Driver = Campaign.Make (Net_backend)

let campaign_outcome ?budget ?lanes ?jobs ?max_workers ?on_batch ?resume
    ?checkpoint ?should_stop ?shard_retries ?retry_backoff_s c faults word =
  match lanes with
  | Some w when w > Sys.int_size ->
      let module L = (val Simcov_util.Lanes.make w) in
      let module D = Campaign.Make_wide (Net_backend_w (L)) in
      D.run ?budget ?jobs ?max_workers ?on_batch ?resume ?checkpoint
        ?should_stop ?shard_retries ?retry_backoff_s c faults word
  | _ ->
      Driver.run ?budget ?jobs ?max_workers ?on_batch ?resume ?checkpoint
        ?should_stop ?shard_retries ?retry_backoff_s c faults word

let campaign ?budget ?lanes ?jobs ?on_batch c faults word =
  (campaign_outcome ?budget ?lanes ?jobs ?on_batch c faults word)
    .Campaign.report

type 'f campaign_report = 'f Campaign.report = {
  backend : string;
  total : int;
  effective : int;
  excited : int;
  detected : int;
  missed : 'f list;
  skipped : int;
  truncated : Simcov_util.Budget.resource option;
  shard_failures : Campaign.shard_failure list;
}

type report = fault campaign_report

let coverage_pct = Campaign.coverage_pct
let pp_report = Campaign.pp_report

let fault_to_json f =
  let open Simcov_util.Json in
  let where =
    match f.site with
    | Reg_output r -> [ ("site", String "reg"); ("index", Int r) ]
    | Primary_input i -> [ ("site", String "input"); ("index", Int i) ]
  in
  Obj (where @ [ ("stuck", Int (if f.stuck then 1 else 0)) ])

let to_json ?extra r = Campaign.to_json ~fault:fault_to_json ?extra r

let fault_key f =
  let tag, i =
    match f.site with Reg_output r -> ("r", r) | Primary_input i -> ("i", i)
  in
  Printf.sprintf "%s:%d:%d" tag i (if f.stuck then 1 else 0)

let pp_fault ppf f =
  let where =
    match f.site with
    | Reg_output r -> Printf.sprintf "reg %d" r
    | Primary_input i -> Printf.sprintf "input %d" i
  in
  Format.fprintf ppf "%s stuck-at-%d" where (if f.stuck then 1 else 0)
