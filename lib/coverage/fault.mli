(** The FSM error model of Section 4.1.

    Every implementation error is modeled as an {e output error}
    (Definition 1: some transition produces the wrong output) or a
    {e transfer error} (Definition 3: some transition goes to the wrong
    state), following the protocol conformance-testing fault model the
    paper builds on. A fault applied to a machine yields a mutant that
    shares the original's tables (no copying). *)

open Simcov_fsm

type t =
  | Transfer of { state : int; input : int; wrong_next : int }
  | Output of { state : int; input : int; wrong_output : int }
  | Conditional_output of {
      state : int;
      input : int;
      wrong_output : int;
      prev : int * int;
          (** the fault manifests only when the immediately preceding
              transition was [prev] — a {e non-uniform} output error
              (Definition 2 fails): only some histories reaching the
              transition expose it. This is the machine-level form of
              the Section 6.3 interlock example. *)
    }

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val key : t -> string
(** A stable, injective textual key (["t:s:i:w"], ["o:s:i:w"],
    ["c:s:i:w:ps:pi"]) — the coverage-database record key: equal faults
    have equal keys across runs and processes. *)

val to_json : t -> Simcov_util.Json.t
(** Structured rendering for campaign reports ([kind] plus the site and
    wrong-value fields). *)

val apply : Fsm.t -> t -> Fsm.t
(** The mutant machine. Validity is unchanged; only the faulted
    [(state, input)] entry's next state or output differs.
    [Conditional_output] faults depend on one transition of history, so
    the mutant machine's state space is the pair (original state,
    previous transition class); [apply] returns an enlarged machine
    whose states [s * 2 + h] track whether the previous transition was
    [prev] ([h = 1]). Its reset is [reset * 2]. Outputs and validity
    project back onto the original machine's, so lockstep comparison
    against the original golden machine remains meaningful. *)

val apply_all : Fsm.t -> t list -> Fsm.t
(** Multiple simultaneous faults (later faults win on the same
    transition). Used for masking experiments. *)

val site : t -> int * int
(** The faulted [(state, input)] pair. *)

val is_uniform_kind : t -> bool
(** [Transfer] and [Output] faults misbehave on every traversal of
    their site; [Conditional_output] faults do not. *)

val is_effective : Fsm.t -> t -> bool
(** False for degenerate faults ([wrong_next] equal to the correct next
    state, or [wrong_output] equal to the correct output), or faults on
    invalid transitions. *)

(** {1 Fault enumeration} *)

val all_output_faults : ?wrong:(int -> int) -> Fsm.t -> t list
(** One output fault per reachable transition; [wrong] maps the correct
    output to the faulty one (default [succ]). *)

val all_transfer_faults : Fsm.t -> t list
(** Every reachable transition redirected to every other reachable
    state. Quadratic — intended for small test models. *)

val sample_transfer_faults : Simcov_util.Rng.t -> Fsm.t -> count:int -> t list
(** Random effective transfer faults (reachable transition, random
    reachable wrong destination). Duplicates are filtered, so fewer
    than [count] faults may be returned on tiny machines. *)

val sample_output_faults :
  Simcov_util.Rng.t -> Fsm.t -> n_outputs:int -> count:int -> t list
