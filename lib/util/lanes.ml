(* Lane sets: the bit-mask vocabulary of the bit-parallel campaign
   engine, abstracted over its representation.

   The campaign driver and its backends manipulate *sets of lanes*
   (mutant slots inside one batch) with bitwise arithmetic. The native
   representation is an OCaml [int] — 63 lanes, zero overhead — and is
   kept as the default and as the oracle for the wide path. The wide
   representation packs [n] lanes into an [int array] (63 bits per
   word), which is the OCaml-native variant of a Bytes-backed
   bit-slice: same memory layout up to word size, but unboxed word
   reads and no per-byte fixups.

   Values are immutable by contract: every operation allocates a fresh
   set (or returns a shared constant), so [zero] / [full] can be
   shared freely. *)

module type S = sig
  type t

  val width : int
  val zero : t
  val full : t
  val ones : int -> t
  val singleton : int -> t
  val add : t -> int -> t
  val remove : t -> int -> t
  val mem : t -> int -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val xor : t -> t -> t
  val compl : t -> t
  val is_empty : t -> bool

  val disjoint : t -> t -> bool
  (** [disjoint a b] is [is_empty (inter a b)] without the
      intersection being materialized. *)

  val equal : t -> t -> bool
  val count : t -> int
  val iter : t -> (int -> unit) -> unit

  val iter2_inter : t -> t -> (int -> unit) -> unit
  (** [iter2_inter a b f] calls [f] on every lane in [a ∩ b] without
      materializing the intersection — the allocation-free form of
      [iter (inter a b) f] for per-step hot paths. Each word of the
      intersection is captured before its lanes are visited, so the
      callback may remove already-visited lanes from [a] or [b]
      (through whatever mutable cell holds them) without affecting the
      traversal. *)
end

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    c := !c + (!m land 1);
    m := !m lsr 1
  done;
  !c

(* Bit index of an isolated power of two, via the multiplicative order
   of 2 mod 67 (2 is a primitive root mod 67, so [2^k mod 67] is
   distinct for every k in 0..62). Bit 62 is the sign bit of a 63-bit
   OCaml int — [min_int land max_int = 0] — so it is special-cased
   rather than sent through [mod]. *)
let bit_index_tbl =
  let t = Array.make 67 0 in
  for k = 0 to 61 do
    t.((1 lsl k) mod 67) <- k
  done;
  t

let iter_word base m f =
  let m = ref m in
  while !m <> 0 do
    let lsb = !m land - !m in
    f (base + if lsb < 0 then 62 else bit_index_tbl.(lsb mod 67));
    (* clear the lowest set bit: iterations = population count, not
       highest-bit position *)
    m := !m land (!m - 1)
  done

module Native = struct
  type t = int

  let width = Sys.int_size
  let zero = 0
  let full = -1
  let ones n = if n >= width then -1 else (1 lsl n) - 1
  let singleton l = 1 lsl l
  let add m l = m lor (1 lsl l)
  let remove m l = m land lnot (1 lsl l)
  let mem m l = m land (1 lsl l) <> 0
  let union a b = a lor b
  let inter a b = a land b
  let diff a b = a land lnot b
  let xor a b = a lxor b
  let compl a = lnot a
  let is_empty m = m = 0
  let disjoint a b = a land b = 0
  let equal (a : int) b = a = b
  let count = popcount
  let iter m f = iter_word 0 m f
  let iter2_inter a b f = iter_word 0 (a land b) f
end

(* Bits per word of the wide representation. 63 (not 64) so each word
   is an immediate OCaml [int]: no Int64 boxing on any operation. *)
let bits_per_word = Sys.int_size

module Wide (W : sig
  val lanes : int
end) =
struct
  let width =
    if W.lanes < 1 then invalid_arg "Lanes.Wide: width must be positive";
    W.lanes

  let nwords = (width + bits_per_word - 1) / bits_per_word

  (* Invariant: bits at positions >= width are always clear, so
     [is_empty] / [equal] / [count] need no trailing-word masking. *)
  type t = int array

  let last_mask =
    let rem = width mod bits_per_word in
    if rem = 0 then -1 else (1 lsl rem) - 1

  let zero = Array.make nwords 0

  let full =
    let a = Array.make nwords (-1) in
    a.(nwords - 1) <- last_mask;
    a

  let ones n =
    if n <= 0 then zero
    else if n >= width then full
    else begin
      let a = Array.make nwords 0 in
      let wfull = n / bits_per_word and rem = n mod bits_per_word in
      Array.fill a 0 wfull (-1);
      if rem > 0 then a.(wfull) <- (1 lsl rem) - 1;
      a
    end

  let singleton l =
    let a = Array.make nwords 0 in
    a.(l / bits_per_word) <- 1 lsl (l mod bits_per_word);
    a

  (* Canonical empties: every operation whose result carries no bits
     returns the shared [zero] itself, so the hot-path emptiness tests
     below start with one physical-equality check instead of a word
     scan, and binary operations against an empty operand short-circuit
     without allocating. In the campaign steady state (no diverged
     lanes, no fault site on the current transition) this makes a wide
     step cost almost exactly a native-int step — which is what lets
     512-lane batches beat the 63-lane baseline instead of drowning the
     saved golden passes in per-word overhead. *)

  let add m l =
    let a = if m == zero then Array.make nwords 0 else Array.copy m in
    let w = l / bits_per_word in
    a.(w) <- a.(w) lor (1 lsl (l mod bits_per_word));
    a

  let remove m l =
    if m == zero then zero
    else begin
      let a = Array.copy m in
      let w = l / bits_per_word in
      a.(w) <- a.(w) land lnot (1 lsl (l mod bits_per_word));
      let rec all0 i = i >= nwords || (a.(i) = 0 && all0 (i + 1)) in
      if all0 0 then zero else a
    end

  let mem m l = m.(l / bits_per_word) land (1 lsl (l mod bits_per_word)) <> 0

  (* [nz] accumulates the or of all result words as they are written,
     so detecting an all-zero result costs nothing extra. The word
     loops below use unsafe accesses: every index is bounded by
     [nwords], the length of every [t] by construction. *)
  let map2 op a b =
    let r = Array.make nwords 0 in
    let nz = ref 0 in
    for i = 0 to nwords - 1 do
      let w = op (Array.unsafe_get a i) (Array.unsafe_get b i) in
      Array.unsafe_set r i w;
      nz := !nz lor w
    done;
    if !nz = 0 then zero else r

  let union a b =
    if a == zero then b else if b == zero then a else map2 ( lor ) a b

  let inter a b = if a == zero || b == zero then zero else map2 ( land ) a b
  let diff a b = if a == zero || b == zero then a else map2 (fun x y -> x land lnot y) a b
  let xor a b = if a == zero then b else if b == zero then a else map2 ( lxor ) a b

  let compl a =
    if a == zero then full
    else begin
      let r = Array.make nwords 0 in
      for i = 0 to nwords - 1 do
        r.(i) <- lnot a.(i)
      done;
      r.(nwords - 1) <- r.(nwords - 1) land last_mask;
      let rec all0 i = i >= nwords || (r.(i) = 0 && all0 (i + 1)) in
      if all0 0 then zero else r
    end

  let is_empty m =
    m == zero
    ||
    let rec go i = i >= nwords || (Array.unsafe_get m i = 0 && go (i + 1)) in
    go 0

  let disjoint a b =
    a == zero || b == zero
    ||
    let rec go i =
      i >= nwords
      || (Array.unsafe_get a i land Array.unsafe_get b i = 0 && go (i + 1))
    in
    go 0

  let equal a b =
    a == b
    ||
    let rec go i =
      i >= nwords
      || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let count m =
    if m == zero then 0
    else begin
      let c = ref 0 in
      for i = 0 to nwords - 1 do
        c := !c + popcount (Array.unsafe_get m i)
      done;
      !c
    end

  let iter m f =
    if m != zero then
      for i = 0 to nwords - 1 do
        let w = Array.unsafe_get m i in
        if w <> 0 then iter_word (i * bits_per_word) w f
      done

  let iter2_inter a b f =
    if a != zero && b != zero then
      for i = 0 to nwords - 1 do
        let w = Array.unsafe_get a i land Array.unsafe_get b i in
        if w <> 0 then iter_word (i * bits_per_word) w f
      done
end

let make n : (module S) =
  if n < 1 then invalid_arg "Lanes.make: width must be positive";
  if n <= Sys.int_size then (module Native)
  else
    (module Wide (struct
      let lanes = n
    end))
