(** A minimal JSON abstract syntax, renderer and parser.

    Just enough JSON for machine-readable tool output (lint reports,
    bench records): build a {!t}, render it with {!to_string}, and
    round-trip it back with {!parse} in tests. No external dependency,
    no streaming, no number-precision heroics ([Int] survives a
    round-trip exactly; a [Float] is printed with enough digits to be
    re-read equal). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render. [indent] > 0 pretty-prints with that step (default 2);
    [indent = 0] minifies. Object key order is preserved. Strings are
    escaped per RFC 8259 (control characters as [\uXXXX]). A
    non-finite [Float] (nan, [infinity], [neg_infinity]) renders as
    [null] — JSON has no literal for it, so it round-trips as {!Null},
    not as a number. Negative zero renders as [-0.0] and survives a
    round-trip exactly. *)

val parse : string -> (t, string) result
(** Total: any malformed input yields [Error msg] with a character
    offset, never an exception. Numbers without [.], [e] or [E] parse
    as [Int]; everything else as [Float]. Trailing garbage after the
    top-level value is an error. *)

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj] (first occurrence). *)

val to_list : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
