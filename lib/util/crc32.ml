(* CRC-32 (IEEE), table-driven, zlib-compatible: reflected polynomial
   0xEDB88320, initial value 0xFFFFFFFF, final xor 0xFFFFFFFF, with the
   inversions folded into [update] so a running value is always a
   finished CRC. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let t = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand !c 0xFFl) lxor Char.code ch in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.lognot !c

let string s = update 0l s

let substring s ~pos ~len = string (String.sub s pos len)

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s <> 8 then None
  else
    let ok = String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s in
    if not ok then None
    else
      (* two halves: a full 8-digit parse can overflow Int32.of_string's
         signed range; scanning each half keeps it in bounds *)
      match
        (int_of_string ("0x" ^ String.sub s 0 4), int_of_string ("0x" ^ String.sub s 4 4))
      with
      | hi, lo ->
          Some (Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo))
      | exception _ -> None
