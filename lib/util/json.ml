type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- rendering ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  (* JSON has no nan/inf literals; "%.17g" would print them verbatim
     and produce output every parser (including ours) rejects *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape_to buf k;
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Bad of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match text.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub text (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       (* keep it simple: encode as UTF-8 *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else if code < 0x800 then begin
                         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                       else begin
                         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                         Buffer.add_char buf
                           (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end);
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    let has c = String.contains s c in
    if has '.' || has 'e' || has 'E' then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail ("bad number " ^ s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> fail ("bad number " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)
  | exception _ -> Error "internal parse error"

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
