(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial).

    Used by the coverage database to checksum every snapshot line and
    to derive cheap campaign-configuration fingerprints. CRC-32 detects
    every single-byte corruption and every burst shorter than 32 bits —
    exactly the torn-write and bit-rot failures a crash-safe snapshot
    must notice — while staying dependency-free and fast (one table
    lookup per byte). It is {e not} a cryptographic hash; fingerprints
    guard against accidental mismatch, not adversaries. *)

val string : string -> int32
(** CRC-32 of the whole string. *)

val substring : string -> pos:int -> len:int -> int32
(** CRC-32 of [len] bytes starting at [pos].
    @raise Invalid_argument on an out-of-bounds range. *)

val update : int32 -> string -> int32
(** zlib-style incremental form: [update 0l s = string s] and
    [update (update 0l a) b = string (a ^ b)] — the pre/post inversion
    happens inside, so the running value is always a finished CRC. *)

val to_hex : int32 -> string
(** Lower-case, zero-padded 8-character hex rendering. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless the input is exactly 8 hex
    digits. *)
