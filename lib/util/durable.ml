(* Atomic durable writes: temp file in the destination directory,
   fsync, rename, directory fsync. See the interface for the contract. *)

type writer = {
  dest : string;
  tmp : string;
  oc : out_channel;
  mutable state : [ `Open | `Committed | `Aborted ];
}

(* [fsync] of a directory is how the rename itself is made durable;
   some filesystems refuse it (EINVAL/EBADF on exotic mounts), and a
   snapshot that is atomic but not rename-durable is still correct, so
   failures here are swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let start dest =
  let tmp = Printf.sprintf "%s.tmp.%d" dest (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  { dest; tmp; oc; state = `Open }

let channel w = w.oc

let commit w =
  if w.state = `Open then begin
    flush w.oc;
    (try Unix.fsync (Unix.descr_of_out_channel w.oc) with Unix.Unix_error _ -> ());
    close_out w.oc;
    Sys.rename w.tmp w.dest;
    fsync_dir (Filename.dirname w.dest);
    w.state <- `Committed
  end

let abort w =
  if w.state = `Open then begin
    (try close_out w.oc with Sys_error _ -> ());
    (try Sys.remove w.tmp with Sys_error _ -> ());
    w.state <- `Aborted
  end

let write_file path f =
  let w = start path in
  match f w.oc with
  | () -> commit w
  | exception e ->
      abort w;
      raise e

let write_string path s = write_file path (fun oc -> output_string oc s)
