type resource = Time | Steps | Nodes

exception Budget_exceeded of resource

type 'a bounded = Exact of 'a | Truncated of 'a * resource

type t = {
  deadline : float option;  (* absolute, Unix.gettimeofday timebase *)
  max_steps : int option;
  max_nodes : int option;
  mutable steps : int;
  mutable node_probe : (unit -> int) option;
      (* live-node reading registered by the engine that owns the
         node-bearing resource (a BDD manager); see budget.mli for the
         enforcement split *)
}

let unlimited =
  { deadline = None; max_steps = None; max_nodes = None; steps = 0; node_probe = None }

let create ?timeout_s ?max_steps ?max_nodes () =
  let deadline =
    match timeout_s with
    | None -> None
    | Some s ->
        if s < 0.0 then invalid_arg "Budget.create: negative timeout";
        Some (Unix.gettimeofday () +. s)
  in
  (match max_steps with
  | Some n when n < 0 -> invalid_arg "Budget.create: negative step budget"
  | _ -> ());
  (match max_nodes with
  | Some n when n <= 0 -> invalid_arg "Budget.create: non-positive node budget"
  | _ -> ());
  { deadline; max_steps; max_nodes; steps = 0; node_probe = None }

let is_unlimited t = t.deadline = None && t.max_steps = None && t.max_nodes = None
let max_nodes t = t.max_nodes
let steps_used t = t.steps

let set_node_probe t probe =
  (* the shared [unlimited] singleton must stay stateless (cf. [step]) *)
  if t != unlimited then t.node_probe <- probe

let live_nodes t = Option.map (fun probe -> probe ()) t.node_probe

let exceeded t =
  match t.deadline with
  | Some d when Unix.gettimeofday () >= d -> Some Time
  | _ -> (
      match t.max_steps with
      | Some m when t.steps >= m -> Some Steps
      | _ -> (
          match (t.max_nodes, t.node_probe) with
          | Some m, Some probe when probe () > m -> Some Nodes
          | _ -> None))

let check t =
  match exceeded t with None -> () | Some r -> raise (Budget_exceeded r)

let step t =
  (* the shared [unlimited] value must stay inert: counting steps on it
     would leak accumulated state across unrelated computations *)
  if t != unlimited then begin
    t.steps <- t.steps + 1;
    check t
  end

let split t ~n =
  if n < 1 then invalid_arg "Budget.split: need at least one child";
  if t == unlimited then Array.init n (fun _ -> create ())
  else
    let child allowance =
      {
        deadline = t.deadline;
        max_steps = allowance;
        max_nodes = t.max_nodes;
        steps = 0;
        node_probe = None;
      }
    in
    match t.max_steps with
    | None -> Array.init n (fun _ -> child None)
    | Some m ->
        (* Carve the parent's *remaining* allowance into disjoint child
           slices and charge the parent for all of it up front — the
           children now own those steps; [reclaim] hands back whatever a
           finished child did not spend. *)
        let remaining = max 0 (m - t.steps) in
        t.steps <- m;
        let base = remaining / n and extra = remaining mod n in
        Array.init n (fun i ->
            child (Some (base + if i < extra then 1 else 0)))

let reclaim t child =
  if t != unlimited then
    match (t.max_steps, child.max_steps) with
    | Some _, Some m ->
        let unspent = max 0 (m - child.steps) in
        t.steps <- max 0 (t.steps - unspent)
    | _ -> ()

let remaining_s t =
  match t.deadline with
  | None -> None
  | Some d -> Some (Float.max 0.0 (d -. Unix.gettimeofday ()))

let resource_name = function
  | Time -> "time"
  | Steps -> "steps"
  | Nodes -> "nodes"

let pp_resource ppf r = Format.pp_print_string ppf (resource_name r)

let value = function Exact v | Truncated (v, _) -> v
let truncation = function Exact _ -> None | Truncated (_, r) -> Some r

let map f = function
  | Exact v -> Exact (f v)
  | Truncated (v, r) -> Truncated (f v, r)

let pp_bounded pp_v ppf = function
  | Exact v -> pp_v ppf v
  | Truncated (v, r) ->
      Format.fprintf ppf "%a (truncated: %a)" pp_v v pp_resource r
