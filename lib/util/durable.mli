(** Atomic, durable file writes.

    Every machine-readable artifact the tools produce (JSON reports,
    metrics snapshots, coverage-database snapshots, bench records) is
    written through this module so that a crash — including [kill -9]
    mid-write — can never leave a truncated or interleaved file at the
    destination path: either the complete new contents are there, or
    the previous contents (or nothing) are.

    The recipe is the classic one: write to a unique temporary file in
    the {e same directory} (rename must not cross filesystems), flush
    and [fsync] it, [rename] it over the destination, then best-effort
    [fsync] the directory so the rename itself survives a power cut.

    Two shapes: the one-shot {!write_file} / {!write_string} for
    callers that produce the contents inside one scope, and the
    {!writer} handle for streams that stay open across a command's
    lifetime (trace sinks): the stream accumulates in the temp file and
    only {!commit} publishes it. *)

type writer

val start : string -> writer
(** Open a temporary file next to the destination path (suffix
    [".tmp.<pid>"]). The destination itself is not touched. *)

val channel : writer -> out_channel
(** The channel to write through. Invalid after {!commit}/{!abort}. *)

val commit : writer -> unit
(** Flush, [fsync], rename over the destination, [fsync] the directory.
    Idempotent: a second call is a no-op. *)

val abort : writer -> unit
(** Close and unlink the temporary file, leaving the destination as it
    was. No-op after {!commit}. *)

val write_file : string -> (out_channel -> unit) -> unit
(** [write_file path f] runs [f] on a fresh temp-file channel and
    commits on normal return; if [f] raises, the temp file is removed
    and the exception re-raised — the destination is untouched either
    way until the commit. *)

val write_string : string -> string -> unit
(** [write_string path s] atomically replaces [path]'s contents with
    [s]. *)
