(** Resource budgets for long-running symbolic computations.

    A budget bundles the three resources a symbolic traversal can
    exhaust — wall-clock time, iteration/step count, and BDD nodes —
    into one mutable accounting object that is threaded through the
    pipeline (bdd → symbolic → core → bin). Exhaustion is reported
    either as the {!Budget_exceeded} exception (for callers that want
    non-local exit) or as a {!bounded} outcome tag (for callers that
    return partial results — the honest-status style of
    coverage-under-resource-pressure work).

    Deadlines are measured against a monotonically sampled wall clock:
    the deadline is stored as an absolute instant computed once at
    {!create} time, so repeated checks never extend it. *)

type resource = Time | Steps | Nodes

exception Budget_exceeded of resource
(** Raised by {!check} / {!step} when the corresponding limit is hit. *)

type 'a bounded =
  | Exact of 'a  (** the computation ran to completion *)
  | Truncated of 'a * resource
      (** a partial result, with the resource that cut it short *)

type t

val unlimited : t
(** The no-op budget: never exhausted, shared freely. It keeps no
    state — {!step} on it is a no-op and {!steps_used} stays [0], so
    sharing it cannot leak counts across computations. *)

val create : ?timeout_s:float -> ?max_steps:int -> ?max_nodes:int -> unit -> t
(** [create ()] with no limits behaves like {!unlimited} but owns its
    own step counter. [timeout_s] is a relative wall-clock allowance
    converted to an absolute deadline immediately. *)

val is_unlimited : t -> bool

val max_nodes : t -> int option
(** The node allowance, for wiring into a BDD manager. *)

val steps_used : t -> int

(** {1 The node-budget enforcement split}

    Unlike time and steps, which this module measures itself, live BDD
    nodes are a resource the budget cannot see on its own. Enforcement
    is therefore split:

    - {e Primary}: the engine that allocates nodes caps itself. A BDD
      manager created with [?max_nodes:(max_nodes budget)] enforces
      the allowance in-kernel — collect-and-retry at the ceiling, then
      [Node_limit] / graceful degradation. Under this regime the live
      count never {e exceeds} the allowance, so the budget's own check
      stays quiet.
    - {e Secondary}: the engine registers a live-node probe with
      {!set_node_probe}; {!exceeded} / {!check} then also report
      [Nodes] whenever the probe reads {e strictly above} the
      allowance. This catches engines that track nodes without
      enforcing the cap themselves, and makes [exceeded] an accurate
      oracle for loops (campaign batches, tour steps) that poll the
      budget but never touch BDDs.
    - A command with no node-bearing engine never registers a probe;
      a node allowance passed to it is inert, which the CLI surfaces
      as a warning rather than silently accepting the flag. *)

val set_node_probe : t -> (unit -> int) option -> unit
(** Install (or clear, with [None]) the live-node probe. A single
    slot: the engine registered last wins, which is what the
    degradation ladder wants — an abandoned tier's manager must stop
    being consulted. No-op on {!unlimited} (the shared singleton stays
    stateless). *)

val live_nodes : t -> int option
(** The probe's current reading, if one is registered. *)

val check : t -> unit
(** @raise Budget_exceeded if the deadline has passed or the step
    budget is already spent. Cheap enough to call per iteration. *)

val step : t -> unit
(** Consume one step, then {!check}. *)

val exceeded : t -> resource option
(** [Some r] if a limit is currently hit, without raising. *)

(** {1 Sub-budgets}

    Domain-sharded computations cannot share one mutable budget: the
    step counter would race. [split] instead carves the parent's
    remaining step allowance into disjoint child slices that each
    domain owns exclusively. *)

val split : t -> n:int -> t array
(** [split t ~n] returns [n] fresh child budgets:

    - each child inherits the parent's {e absolute} deadline (so a
      wall-clock timeout stays a single global instant, not [n]
      restarted ones) and its node allowance;
    - the parent's remaining step allowance ([max_steps - steps_used])
      is divided into [n] near-equal disjoint slices (the first
      [remaining mod n] children get one extra step), and the parent
      is charged for all of it up front — after [split], the parent's
      own [step] raises immediately. Use {!reclaim} to return a
      finished child's unspent steps;
    - children start with no node probe (each sharded engine registers
      its own, if any);
    - splitting an exhausted parent yields children with a zero step
      allowance, which are truncated on their first {!step} — parent
      exhaustion propagates to every child;
    - splitting {!unlimited} yields fresh unconstrained budgets.

    @raise Invalid_argument if [n < 1]. *)

val reclaim : t -> t -> unit
(** [reclaim parent child] returns the [child]'s unspent step
    allowance to [parent] (no-op when either side has no step limit).
    Call it once per child, after the child's domain has been joined. *)

val remaining_s : t -> float option
(** Seconds until the deadline ([None] if no deadline); never
    negative. *)

val resource_name : resource -> string
val pp_resource : Format.formatter -> resource -> unit

val value : 'a bounded -> 'a
val truncation : 'a bounded -> resource option
val map : ('a -> 'b) -> 'a bounded -> 'b bounded

val pp_bounded :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a bounded -> unit
(** Prints the value followed by [" (truncated: <resource>)"] when
    partial. *)
