(** Lane sets for the bit-parallel campaign engine.

    A lane set is a subset of [0 .. width-1] — the mutant slots of one
    campaign batch — with the bitwise operations the driver and its
    backends perform on batch masks. Two representations:

    - {!Native}: a plain OCaml [int], [Sys.int_size] (= 63) lanes.
      Every operation is one machine instruction; this is the default
      path and the oracle the wide path is tested against.
    - {!Wide}: [n] lanes packed into an [int array], 63 bits per word
      (each word an immediate int — the OCaml-native variant of a
      [Bytes] bit-slice, without per-byte fixups or Int64 boxing).

    Values are immutable by contract: operations never mutate their
    arguments, so the shared {!S.zero} / {!S.full} constants are safe
    to reuse. [compl] is a complement {e within the width}: bits at
    positions [>= width] are never set, so [is_empty] / [equal] /
    [count] are representation-exact. *)

module type S = sig
  type t

  val width : int
  (** Number of lanes this representation carries per batch. *)

  val zero : t
  val full : t

  val ones : int -> t
  (** [ones n] is the set of lanes [0 .. n-1], clamped to [width]. *)

  val singleton : int -> t
  val add : t -> int -> t
  val remove : t -> int -> t
  val mem : t -> int -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val xor : t -> t -> t

  val compl : t -> t
  (** Complement within [0 .. width-1]. *)

  val is_empty : t -> bool

  val disjoint : t -> t -> bool
  (** [disjoint a b] is [is_empty (inter a b)] without the
      intersection being materialized. *)

  val equal : t -> t -> bool
  val count : t -> int

  val iter : t -> (int -> unit) -> unit
  (** Calls [f] on each member lane in ascending order. *)

  val iter2_inter : t -> t -> (int -> unit) -> unit
  (** [iter2_inter a b f] calls [f] on every lane of [a ∩ b] in
      ascending order without materializing the intersection — the
      allocation-free form of [iter (inter a b) f]. Each word of the
      intersection is captured before its lanes are visited, so the
      callback may remove already-visited lanes from whatever mutable
      cell holds [a] or [b] without affecting the traversal. *)
end

val iter_word : int -> int -> (int -> unit) -> unit
(** [iter_word base m f] calls [f (base + k)] for every set bit [k] of
    the int mask [m], in ascending order, clearing the lowest set bit
    each round — iterations equal the population count, so sparse
    masks (the hot-path norm) cost almost nothing. *)

module Native : S with type t = int
(** The 63-lane native-int path: [width = Sys.int_size]. *)

module Wide (_ : sig
  val lanes : int
end) : S
(** [Wide(struct let lanes = n end)] carries [n] lanes per batch.
    @raise Invalid_argument if [n < 1]. *)

val make : int -> (module S)
(** [make n] picks the representation for [n] lanes at runtime:
    {!Native} when [n <= Sys.int_size], a {!Wide} instance otherwise.
    @raise Invalid_argument if [n < 1]. *)
